#pragma once

// The discretized acoustic-gravity model (the paper's "Cascadia application
// code"). Assembles the semi-discrete first-order system
//
//   M d/dt [u; p] = -A [u; p] + [0; L m(t)]
//
// with (Eq. (4)):
//   M = diag( rho * (u,tau) ,  K^-1 (p,v) + <(rho g)^-1 p, v>_surface )
//   A = [ 0   B ; -B^T   S_a ],  S_a = <Z^-1 p, v>_lateral,
// where B is the weighted-gradient kernel (MixedOperator), both mass blocks
// are diagonal (spectral-element collocation = the paper's lumped mass), and
// L is the seafloor source map. The generator Lambda = -M^{-1} A and its
// exact transpose drive the forward and adjoint RK4 steppers.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "fem/basis.hpp"
#include "fem/boundary_ops.hpp"
#include "fem/geometry.hpp"
#include "fem/h1_space.hpp"
#include "fem/l2_space.hpp"
#include "fem/pa_kernels.hpp"
#include "mesh/hex_mesh.hpp"

namespace tsunami {

/// Owns the full spatial discretization of the acoustic-gravity system.
class AcousticGravityModel {
 public:
  AcousticGravityModel(const HexMesh& mesh, std::size_t order,
                       const PhysicalConstants& constants = {},
                       KernelVariant variant = KernelVariant::FusedPA);

  // --- sizes and views -----------------------------------------------------
  [[nodiscard]] std::size_t velocity_dim() const { return l2_->num_dofs(); }
  [[nodiscard]] std::size_t pressure_dim() const { return h1_->num_dofs(); }
  [[nodiscard]] std::size_t state_dim() const {
    return velocity_dim() + pressure_dim();
  }
  [[nodiscard]] std::span<const double> velocity_part(
      std::span<const double> state) const {
    return state.subspan(0, velocity_dim());
  }
  [[nodiscard]] std::span<const double> pressure_part(
      std::span<const double> state) const {
    return state.subspan(velocity_dim());
  }
  [[nodiscard]] std::span<double> velocity_part(std::span<double> state) const {
    return state.subspan(0, velocity_dim());
  }
  [[nodiscard]] std::span<double> pressure_part(std::span<double> state) const {
    return state.subspan(velocity_dim());
  }

  // --- operators -----------------------------------------------------------
  /// out = Lambda y = -M^{-1} A y (the forward generator).
  void apply_generator(std::span<const double> y, std::span<double> out) const;

  /// out = Lambda^T y = -A^T M^{-1} y (the exact discrete adjoint generator).
  void apply_generator_transpose(std::span<const double> y,
                                 std::span<double> out) const;

  /// out = A y (for energy/consistency tests).
  void apply_a(std::span<const double> y, std::span<double> out) const;

  /// Discrete energy 1/2 y^T M y.
  [[nodiscard]] double energy(std::span<const double> y) const;

  /// M^{-1} applied to a pressure-space vector (for source terms).
  void pressure_mass_inverse(std::span<const double> in,
                             std::span<double> out) const;

  // --- access --------------------------------------------------------------
  [[nodiscard]] const H1Space& h1() const { return *h1_; }
  [[nodiscard]] const L2Space& l2() const { return *l2_; }
  [[nodiscard]] const MixedOperator& mixed_op() const { return *op_; }
  [[nodiscard]] MixedOperator& mixed_op() { return *op_; }
  [[nodiscard]] const BottomSourceMap& source_map() const { return *source_; }
  [[nodiscard]] const PhysicalConstants& constants() const { return phys_; }
  [[nodiscard]] const HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const BasisTables& tables() const { return tables_; }
  [[nodiscard]] const PaGeometry& geometry() const { return geom_; }

  /// Stable explicit timestep estimate: cfl * h_min / (c * p^2).
  [[nodiscard]] double cfl_timestep(double cfl = 0.5) const;

  /// Memory footprint of the operator data (for the SecVII-B memory study).
  [[nodiscard]] std::size_t pa_bytes() const { return geom_.pa_bytes(); }

  /// Toggle absorbing boundaries (closed basin conserves energy -> tests).
  void set_absorbing(bool on) { absorbing_on_ = on; }
  [[nodiscard]] bool absorbing() const { return absorbing_on_; }

 private:
  const HexMesh& mesh_;
  PhysicalConstants phys_;
  BasisTables tables_;
  std::unique_ptr<H1Space> h1_;
  std::unique_ptr<L2Space> l2_;
  PaGeometry geom_;
  std::unique_ptr<MixedOperator> op_;
  std::unique_ptr<BottomSourceMap> source_;

  std::vector<double> mass_u_;        ///< diagonal velocity mass (rho w detJ)
  std::vector<double> mass_p_;        ///< diagonal pressure mass (+ surface)
  std::vector<double> inv_mass_u_;
  std::vector<double> inv_mass_p_;
  std::vector<double> absorbing_diag_;
  bool absorbing_on_ = true;
};

}  // namespace tsunami
