#include "wave/acoustic_gravity.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

AcousticGravityModel::AcousticGravityModel(const HexMesh& mesh,
                                           std::size_t order,
                                           const PhysicalConstants& constants,
                                           KernelVariant variant)
    : mesh_(mesh), phys_(constants), tables_(order) {
  h1_ = std::make_unique<H1Space>(mesh_, tables_);
  l2_ = std::make_unique<L2Space>(mesh_, tables_);
  geom_ = build_pa_geometry(mesh_, tables_);
  op_ = std::make_unique<MixedOperator>(*h1_, *l2_, geom_, tables_, variant);
  source_ = std::make_unique<BottomSourceMap>(*h1_);

  // Diagonal velocity mass: rho * w detJ at each collocation point, same for
  // all three components.
  const std::size_t q3 = geom_.q3;
  mass_u_.resize(l2_->num_dofs());
  for (std::size_t e = 0; e < geom_.nelem; ++e)
    for (std::size_t d = 0; d < 3; ++d)
      for (std::size_t pt = 0; pt < q3; ++pt)
        mass_u_[l2_->dof(e, d, pt)] = phys_.rho * geom_.wdetj[e * q3 + pt];

  // Diagonal pressure mass: K^{-1} * lumped volume mass + free-surface term.
  mass_p_ = h1_lumped_mass(*h1_);
  const double kinv = 1.0 / phys_.bulk_modulus();
  for (auto& v : mass_p_) v *= kinv;
  const auto surf = surface_gravity_diagonal(*h1_, phys_);
  for (std::size_t i = 0; i < mass_p_.size(); ++i) mass_p_[i] += surf[i];

  inv_mass_u_.resize(mass_u_.size());
  for (std::size_t i = 0; i < mass_u_.size(); ++i) {
    if (mass_u_[i] <= 0.0)
      throw std::runtime_error("AcousticGravityModel: nonpositive u-mass");
    inv_mass_u_[i] = 1.0 / mass_u_[i];
  }
  inv_mass_p_.resize(mass_p_.size());
  for (std::size_t i = 0; i < mass_p_.size(); ++i) {
    if (mass_p_[i] <= 0.0)
      throw std::runtime_error("AcousticGravityModel: nonpositive p-mass");
    inv_mass_p_[i] = 1.0 / mass_p_[i];
  }

  absorbing_diag_ = absorbing_diagonal(*h1_, phys_);
}

void AcousticGravityModel::apply_a(std::span<const double> y,
                                   std::span<double> out) const {
  if (y.size() != state_dim() || out.size() != state_dim())
    throw std::invalid_argument("apply_a: size mismatch");
  const auto p_in = pressure_part(y);
  const auto u_in = velocity_part(y);
  auto u_out = velocity_part(out);
  auto p_out = pressure_part(out);
  // A = [0, B; -B^T, S_a].
  op_->apply_blocks(p_in, u_in, u_out, p_out, +1.0, -1.0);
  if (absorbing_on_) {
    const double* pd = p_in.data();
    double* po = p_out.data();
    const double* sa = absorbing_diag_.data();
    parallel_for_min(p_out.size(), 1 << 14,
                     [&](std::size_t i) { po[i] += sa[i] * pd[i]; });
  }
}

void AcousticGravityModel::apply_generator(std::span<const double> y,
                                           std::span<double> out) const {
  apply_a(y, out);
  // out = -M^{-1} out.
  auto u_out = velocity_part(out);
  auto p_out = pressure_part(out);
  const double* imu = inv_mass_u_.data();
  const double* imp = inv_mass_p_.data();
  double* up = u_out.data();
  double* pp = p_out.data();
  parallel_for_min(u_out.size(), 1 << 14,
                   [&](std::size_t i) { up[i] = -imu[i] * up[i]; });
  parallel_for_min(p_out.size(), 1 << 14,
                   [&](std::size_t i) { pp[i] = -imp[i] * pp[i]; });
}

void AcousticGravityModel::apply_generator_transpose(
    std::span<const double> y, std::span<double> out) const {
  if (y.size() != state_dim() || out.size() != state_dim())
    throw std::invalid_argument("apply_generator_transpose: size mismatch");
  // Lambda^T = -A^T M^{-1}: scale by the diagonal M^{-1}, then apply A^T.
  std::vector<double> scaled(y.size());
  {
    const auto u_in = velocity_part(y);
    const auto p_in = pressure_part(y);
    double* su = scaled.data();
    double* sp = scaled.data() + velocity_dim();
    const double* imu = inv_mass_u_.data();
    const double* imp = inv_mass_p_.data();
    const double* ud = u_in.data();
    const double* pd = p_in.data();
    parallel_for_min(u_in.size(), 1 << 14,
                     [&](std::size_t i) { su[i] = imu[i] * ud[i]; });
    parallel_for_min(p_in.size(), 1 << 14,
                     [&](std::size_t i) { sp[i] = imp[i] * pd[i]; });
  }
  // A^T = [0, -B; B^T, S_a]; then negate everything for Lambda^T = -A^T ...:
  // net signs: u_out = +B p_scaled, p_out = -B^T u_scaled - S_a p_scaled.
  const std::span<const double> sc(scaled);
  const auto u_in = velocity_part(sc);
  const auto p_in = pressure_part(sc);
  auto u_out = velocity_part(out);
  auto p_out = pressure_part(out);
  op_->apply_blocks(p_in, u_in, u_out, p_out, +1.0, -1.0);
  if (absorbing_on_) {
    const double* pd = p_in.data();
    double* po = p_out.data();
    const double* sa = absorbing_diag_.data();
    parallel_for_min(p_out.size(), 1 << 14,
                     [&](std::size_t i) { po[i] -= sa[i] * pd[i]; });
  }
}

double AcousticGravityModel::energy(std::span<const double> y) const {
  const auto u = velocity_part(y);
  const auto p = pressure_part(y);
  double e = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) e += mass_u_[i] * u[i] * u[i];
  for (std::size_t i = 0; i < p.size(); ++i) e += mass_p_[i] * p[i] * p[i];
  return 0.5 * e;
}

void AcousticGravityModel::pressure_mass_inverse(std::span<const double> in,
                                                 std::span<double> out) const {
  if (in.size() != pressure_dim() || out.size() != pressure_dim())
    throw std::invalid_argument("pressure_mass_inverse: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = inv_mass_p_[i] * in[i];
}

double AcousticGravityModel::cfl_timestep(double cfl) const {
  const double h = mesh_.min_edge_length();
  const double p2 = static_cast<double>(tables_.order * tables_.order);
  return cfl * h / (phys_.sound_speed * p2);
}

}  // namespace tsunami
