#include "wave/adjoint.hpp"

#include <stdexcept>

namespace tsunami {

std::vector<double> TimeGrid::observation_times() const {
  std::vector<double> t(num_intervals);
  for (std::size_t i = 0; i < num_intervals; ++i)
    t[i] = static_cast<double>(i + 1) * interval();
  return t;
}

void forward_p2o_apply(const AcousticGravityModel& model,
                       const ObservationOperator& obs, const TimeGrid& grid,
                       std::span<const double> m, std::span<double> d) {
  const std::size_t nm = model.source_map().parameter_dim();
  const std::size_t nd = obs.num_outputs();
  const std::size_t nt = grid.num_intervals;
  if (m.size() != nm * nt || d.size() != nd * nt)
    throw std::invalid_argument("forward_p2o_apply: size mismatch");

  Rk4Stepper stepper(model);
  std::vector<double> y(model.state_dim(), 0.0);
  std::vector<double> rhs_p(model.pressure_dim());
  std::vector<double> b(model.state_dim(), 0.0);

  for (std::size_t i = 0; i < nt; ++i) {
    // b = M^{-1} L m_i (state-space source, velocity part zero).
    model.source_map().apply(m.subspan(i * nm, nm),
                             std::span<double>(rhs_p));
    auto bp = model.pressure_part(std::span<double>(b));
    model.pressure_mass_inverse(rhs_p, bp);
    for (std::size_t j = 0; j < grid.substeps; ++j)
      stepper.step(std::span<double>(y), b, grid.dt);
    obs.apply(y, d.subspan(i * nd, nd));
  }
}

void forward_multi_observe(const AcousticGravityModel& model,
                           const std::vector<const ObservationOperator*>& obs,
                           const TimeGrid& grid, std::span<const double> m,
                           std::vector<Matrix>& series) {
  const std::size_t nm = model.source_map().parameter_dim();
  const std::size_t nt = grid.num_intervals;
  if (m.size() != nm * nt)
    throw std::invalid_argument("forward_multi_observe: size mismatch");
  series.clear();
  for (const auto* o : obs) series.emplace_back(nt, o->num_outputs());

  Rk4Stepper stepper(model);
  std::vector<double> y(model.state_dim(), 0.0);
  std::vector<double> rhs_p(model.pressure_dim());
  std::vector<double> b(model.state_dim(), 0.0);

  for (std::size_t i = 0; i < nt; ++i) {
    model.source_map().apply(m.subspan(i * nm, nm), std::span<double>(rhs_p));
    auto bp = model.pressure_part(std::span<double>(b));
    model.pressure_mass_inverse(rhs_p, bp);
    for (std::size_t j = 0; j < grid.substeps; ++j)
      stepper.step(std::span<double>(y), b, grid.dt);
    for (std::size_t k = 0; k < obs.size(); ++k)
      obs[k]->apply(y, series[k].row(i));
  }
}

void adjoint_p2o_transpose_apply(const AcousticGravityModel& model,
                                 const ObservationOperator& obs,
                                 const TimeGrid& grid,
                                 std::span<const double> d,
                                 std::span<double> y) {
  const std::size_t nm = model.source_map().parameter_dim();
  const std::size_t nd = obs.num_outputs();
  const std::size_t nt = grid.num_intervals;
  if (d.size() != nd * nt || y.size() != nm * nt)
    throw std::invalid_argument("adjoint_p2o_transpose_apply: size mismatch");

  Rk4Stepper stepper(model);
  std::vector<double> w(model.state_dim(), 0.0);
  std::vector<double> acc(model.state_dim());
  std::vector<double> minv_acc(model.pressure_dim());

  // Reverse sweep over intervals: w accumulates C^T d_j, then propagates by
  // Ptil^T while the D^T accumulation extracts (F^T d)_j = Btil^T w_j.
  for (std::size_t jj = nt; jj-- > 0;) {
    obs.apply_transpose_add(d.subspan(jj * nd, nd), std::span<double>(w));
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::size_t s = 0; s < grid.substeps; ++s)
      stepper.adjoint_step(std::span<double>(w), std::span<double>(acc),
                           grid.dt);
    const auto acc_p = model.pressure_part(std::span<const double>(acc));
    model.pressure_mass_inverse(acc_p, std::span<double>(minv_acc));
    model.source_map().apply_transpose(minv_acc, y.subspan(jj * nm, nm));
  }
}

Matrix adjoint_p2o_rows(const AcousticGravityModel& model,
                        const ObservationOperator& obs,
                        std::size_t output_index, const TimeGrid& grid,
                        TimerRegistry* timers) {
  const std::size_t nm = model.source_map().parameter_dim();
  const std::size_t nt = grid.num_intervals;
  Matrix rows(nt, nm);

  Stopwatch setup_watch;
  Rk4Stepper stepper(model);
  // Seed: w = C^T e_s.
  std::vector<double> w(model.state_dim(), 0.0);
  std::vector<double> seed(obs.num_outputs(), 0.0);
  seed[output_index] = 1.0;
  obs.apply_transpose_add(seed, std::span<double>(w));

  std::vector<double> acc(model.state_dim());
  std::vector<double> minv_acc(model.pressure_dim());
  if (timers) timers->add("Setup", setup_watch.seconds());

  Stopwatch solve_watch;
  for (std::size_t k = 0; k < nt; ++k) {
    std::fill(acc.begin(), acc.end(), 0.0);
    // acc = sum_{j=0..S-1} D^T (P^T)^j w; afterwards w = (P^T)^S w.
    for (std::size_t j = 0; j < grid.substeps; ++j)
      stepper.adjoint_step(std::span<double>(w), std::span<double>(acc),
                           grid.dt);
    // Row k: Btil^T (...) = L^T M^{-1} acc.
    const auto acc_p =
        model.pressure_part(std::span<const double>(acc));
    model.pressure_mass_inverse(acc_p, std::span<double>(minv_acc));
    model.source_map().apply_transpose(minv_acc, rows.row(k));
  }
  if (timers) timers->add("Adjoint p2o", solve_watch.seconds());
  return rows;
}

}  // namespace tsunami
