#pragma once

// Forward and adjoint propagation of the discrete parameter-to-observable
// map.
//
// With a zero-order hold of the parameter over observation intervals (S RK4
// substeps per interval), the discrete dynamics are
//   y_i = Ptil y_{i-1} + Btil m_i,    d_i = C y_i,
//   Ptil = P^S,   Btil = (sum_{j=0..S-1} P^j D) M^{-1} L,
// which is exactly the block lower-triangular Toeplitz structure of SecV-A:
//   d_i = sum_{j <= i} F_{i-j+1} m_j,   F_k = C Ptil^{k-1} Btil.
//
// forward_p2o_apply computes F m by time stepping (used for synthetic data
// and as the test oracle); adjoint_p2o_rows computes row s of every block
// F_k from ONE adjoint propagation seeded at sensor s — the paper's Phase 1
// ("one adjoint wave propagation per sensor").

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "util/timer.hpp"
#include "wave/observation.hpp"
#include "wave/stepper.hpp"

namespace tsunami {

/// Temporal discretization: Nt observation intervals, S RK4 substeps each.
struct TimeGrid {
  std::size_t num_intervals = 0;  ///< Nt
  std::size_t substeps = 1;       ///< S
  double dt = 0.0;                ///< RK4 substep size

  [[nodiscard]] double interval() const {
    return static_cast<double>(substeps) * dt;
  }
  [[nodiscard]] double total_time() const {
    return static_cast<double>(num_intervals) * interval();
  }
  /// Observation instants t_i (end of each interval).
  [[nodiscard]] std::vector<double> observation_times() const;
};

/// d = F m by forward time stepping. `m` is time-major (Nt blocks of size
/// Nm); `d` is time-major (Nt blocks of size obs.num_outputs()).
void forward_p2o_apply(const AcousticGravityModel& model,
                       const ObservationOperator& obs, const TimeGrid& grid,
                       std::span<const double> m, std::span<double> d);

/// Forward solve recording several observation streams at once (sensors and
/// QoI gauges share one propagation). Output matrices are resized to
/// (Nt x num_outputs).
void forward_multi_observe(const AcousticGravityModel& model,
                           const std::vector<const ObservationOperator*>& obs,
                           const TimeGrid& grid, std::span<const double> m,
                           std::vector<Matrix>& series);

/// y = F^T d by one adjoint propagation with time-dependent seeding (reverse
/// sweep): w_j = Ptil^T w_{j+1} + C^T d_j, (F^T d)_j = Btil^T w_j. This is
/// the "adjoint PDE solve" half of a conventional Hessian matvec — the SoA
/// baseline's per-CG-iteration cost (SecIV).
void adjoint_p2o_transpose_apply(const AcousticGravityModel& model,
                                 const ObservationOperator& obs,
                                 const TimeGrid& grid,
                                 std::span<const double> d,
                                 std::span<double> y);

/// Row s of every Toeplitz block from one adjoint propagation:
/// returns R with R(k, r) = (F_{k+1})_{s, r},  k = 0..Nt-1, r = 0..Nm-1.
/// If `timers` is given, records "Setup" / "Adjoint p2o" samples (Table I).
[[nodiscard]] Matrix adjoint_p2o_rows(const AcousticGravityModel& model,
                                      const ObservationOperator& obs,
                                      std::size_t output_index,
                                      const TimeGrid& grid,
                                      TimerRegistry* timers = nullptr);

}  // namespace tsunami
