#include "wave/stepper.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"

namespace tsunami {

Rk4Stepper::Rk4Stepper(const AcousticGravityModel& model) : model_(model) {
  const std::size_t n = model_.state_dim();
  k1_.resize(n);
  k2_.resize(n);
  k3_.resize(n);
  k4_.resize(n);
  tmp_.resize(n);
}

void Rk4Stepper::step(std::span<double> y, std::span<const double> b,
                      double dt) {
  const std::size_t n = model_.state_dim();
  if (y.size() != n) throw std::invalid_argument("Rk4Stepper::step: bad size");
  const bool has_b = !b.empty();
  if (has_b && b.size() != n)
    throw std::invalid_argument("Rk4Stepper::step: bad rhs size");

  auto add_b = [&](std::vector<double>& k) {
    if (has_b) axpy(1.0, b, std::span<double>(k));
  };

  // k1 = L y + b
  model_.apply_generator(y, std::span<double>(k1_));
  add_b(k1_);
  // k2 = L (y + dt/2 k1) + b
  std::copy(y.begin(), y.end(), tmp_.begin());
  axpy(0.5 * dt, k1_, std::span<double>(tmp_));
  model_.apply_generator(tmp_, std::span<double>(k2_));
  add_b(k2_);
  // k3 = L (y + dt/2 k2) + b
  std::copy(y.begin(), y.end(), tmp_.begin());
  axpy(0.5 * dt, k2_, std::span<double>(tmp_));
  model_.apply_generator(tmp_, std::span<double>(k3_));
  add_b(k3_);
  // k4 = L (y + dt k3) + b
  std::copy(y.begin(), y.end(), tmp_.begin());
  axpy(dt, k3_, std::span<double>(tmp_));
  model_.apply_generator(tmp_, std::span<double>(k4_));
  add_b(k4_);

  const double w = dt / 6.0;
  axpy(w, k1_, y);
  axpy(2.0 * w, k2_, y);
  axpy(2.0 * w, k3_, y);
  axpy(w, k4_, y);
}

void Rk4Stepper::adjoint_step(std::span<double> w, std::span<double> acc,
                              double dt) {
  const std::size_t n = model_.state_dim();
  if (w.size() != n)
    throw std::invalid_argument("Rk4Stepper::adjoint_step: bad size");
  const bool has_acc = !acc.empty();
  if (has_acc && acc.size() != n)
    throw std::invalid_argument("Rk4Stepper::adjoint_step: bad acc size");

  // Krylov sequence v_i = (Lambda^T)^i w.
  model_.apply_generator_transpose(w, std::span<double>(k1_));
  model_.apply_generator_transpose(k1_, std::span<double>(k2_));
  model_.apply_generator_transpose(k2_, std::span<double>(k3_));
  model_.apply_generator_transpose(k3_, std::span<double>(k4_));

  if (has_acc) {
    // acc += D^T w = h (w + h/2 v1 + h^2/6 v2 + h^3/24 v3).
    axpy(dt, w, acc);
    axpy(dt * dt / 2.0, k1_, acc);
    axpy(dt * dt * dt / 6.0, k2_, acc);
    axpy(dt * dt * dt * dt / 24.0, k3_, acc);
  }
  // w <- P^T w = w + h v1 + h^2/2 v2 + h^3/6 v3 + h^4/24 v4.
  axpy(dt, k1_, w);
  axpy(dt * dt / 2.0, k2_, w);
  axpy(dt * dt * dt / 6.0, k3_, w);
  axpy(dt * dt * dt * dt / 24.0, k4_, w);
}

}  // namespace tsunami
