#pragma once

// Observation operators: seafloor pressure sensors (the data d) and sea
// surface wave-height QoI gauges (the forecasts q).
//
// A sensor observes  d_j = p(x_j, t)  with x_j on the seafloor; a QoI gauge
// observes eta(x_j, t) = p(x_j, t) / (rho g) with x_j on the sea surface
// (the free-surface condition p = rho g eta of Eq. (1)). Both are sparse
// point-evaluation rows over the pressure space; their transposes place
// adjoint sources, which is how Phase 1 builds the p2o/p2q maps with one
// adjoint solve per row.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "wave/acoustic_gravity.hpp"

namespace tsunami {

/// A set of point observation functionals over the pressure field.
class ObservationOperator {
 public:
  /// Seafloor pressure sensors at footprint positions (x, y).
  static ObservationOperator seafloor_sensors(
      const AcousticGravityModel& model,
      const std::vector<std::array<double, 2>>& positions);

  /// Sea-surface wave-height gauges at footprint positions (x, y); rows are
  /// scaled by 1/(rho g) so the observable is eta in meters.
  static ObservationOperator surface_gauges(
      const AcousticGravityModel& model,
      const std::vector<std::array<double, 2>>& positions);

  [[nodiscard]] std::size_t num_outputs() const { return rows_.size(); }

  /// d = C y (reads only the pressure part of the state).
  void apply(std::span<const double> state, std::span<double> d) const;

  /// state += C^T coeffs (writes only the pressure part); used to seed
  /// adjoint solves. `state` is NOT zeroed.
  void apply_transpose_add(std::span<const double> coeffs,
                           std::span<double> state) const;

  /// The sparse row of output j as a dense pressure-space vector.
  [[nodiscard]] std::vector<double> dense_row(std::size_t j) const;

  [[nodiscard]] const std::vector<std::array<double, 2>>& positions() const {
    return positions_;
  }

 private:
  ObservationOperator(const AcousticGravityModel& model,
                      std::vector<PointEval> rows,
                      std::vector<std::array<double, 2>> positions);

  const AcousticGravityModel& model_;
  std::vector<PointEval> rows_;
  std::vector<std::array<double, 2>> positions_;
};

/// Uniformly spread `n` sensor positions over the rectangle
/// [x0, x1] x [y0, y1] on a near-square grid (hypothesized offshore array,
/// like the paper's 600-sensor layout).
[[nodiscard]] std::vector<std::array<double, 2>> sensor_grid(
    std::size_t n, double x0, double x1, double y0, double y1);

}  // namespace tsunami
