#include "wave/observation.hpp"

#include <cmath>
#include <stdexcept>

namespace tsunami {

ObservationOperator::ObservationOperator(
    const AcousticGravityModel& model, std::vector<PointEval> rows,
    std::vector<std::array<double, 2>> positions)
    : model_(model), rows_(std::move(rows)), positions_(std::move(positions)) {}

ObservationOperator ObservationOperator::seafloor_sensors(
    const AcousticGravityModel& model,
    const std::vector<std::array<double, 2>>& positions) {
  std::vector<PointEval> rows;
  rows.reserve(positions.size());
  for (const auto& xy : positions)
    rows.push_back(model.h1().locate_on_bottom(xy[0], xy[1]));
  return ObservationOperator(model, std::move(rows), positions);
}

ObservationOperator ObservationOperator::surface_gauges(
    const AcousticGravityModel& model,
    const std::vector<std::array<double, 2>>& positions) {
  std::vector<PointEval> rows;
  rows.reserve(positions.size());
  const double scale =
      1.0 / (model.constants().rho * model.constants().gravity);
  for (const auto& xy : positions) {
    PointEval row = model.h1().locate_on_surface(xy[0], xy[1]);
    for (auto& w : row.weights) w *= scale;
    rows.push_back(std::move(row));
  }
  return ObservationOperator(model, std::move(rows), positions);
}

void ObservationOperator::apply(std::span<const double> state,
                                std::span<double> d) const {
  if (state.size() != model_.state_dim() || d.size() != rows_.size())
    throw std::invalid_argument("ObservationOperator::apply: size mismatch");
  const auto p = model_.pressure_part(state);
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    const auto& row = rows_[j];
    double s = 0.0;
    for (std::size_t k = 0; k < row.dofs.size(); ++k)
      s += row.weights[k] * p[row.dofs[k]];
    d[j] = s;
  }
}

void ObservationOperator::apply_transpose_add(std::span<const double> coeffs,
                                              std::span<double> state) const {
  if (state.size() != model_.state_dim() || coeffs.size() != rows_.size())
    throw std::invalid_argument(
        "ObservationOperator::apply_transpose_add: size mismatch");
  auto p = model_.pressure_part(state);
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    const double c = coeffs[j];
    if (c == 0.0) continue;
    const auto& row = rows_[j];
    for (std::size_t k = 0; k < row.dofs.size(); ++k)
      p[row.dofs[k]] += c * row.weights[k];
  }
}

std::vector<double> ObservationOperator::dense_row(std::size_t j) const {
  if (j >= rows_.size())
    throw std::out_of_range("ObservationOperator::dense_row");
  std::vector<double> out(model_.pressure_dim(), 0.0);
  const auto& row = rows_[j];
  for (std::size_t k = 0; k < row.dofs.size(); ++k)
    out[row.dofs[k]] = row.weights[k];
  return out;
}

std::vector<std::array<double, 2>> sensor_grid(std::size_t n, double x0,
                                               double x1, double y0,
                                               double y1) {
  if (n == 0) return {};
  // Near-square grid: rows x cols >= n, aspect following the rectangle.
  const double aspect = (y1 - y0) / (x1 - x0);
  std::size_t cols = static_cast<std::size_t>(
      std::max(1.0, std::round(std::sqrt(static_cast<double>(n) / aspect))));
  std::size_t grid_rows = (n + cols - 1) / cols;
  std::vector<std::array<double, 2>> out;
  out.reserve(n);
  for (std::size_t r = 0; r < grid_rows && out.size() < n; ++r) {
    for (std::size_t c = 0; c < cols && out.size() < n; ++c) {
      const double fx = (static_cast<double>(c) + 0.5) / static_cast<double>(cols);
      const double fy =
          (static_cast<double>(r) + 0.5) / static_cast<double>(grid_rows);
      out.push_back({x0 + fx * (x1 - x0), y0 + fy * (y1 - y0)});
    }
  }
  return out;
}

}  // namespace tsunami
