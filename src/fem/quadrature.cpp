#include "fem/quadrature.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tsunami {

namespace {

/// Legendre polynomial P_n(x) and its derivative via the standard recurrence.
struct LegendreEval {
  double value;
  double derivative;
};

LegendreEval legendre(std::size_t n, double x) {
  double p0 = 1.0, p1 = x;
  if (n == 0) return {1.0, 0.0};
  for (std::size_t k = 2; k <= n; ++k) {
    const double pk = ((2.0 * static_cast<double>(k) - 1.0) * x * p1 -
                       (static_cast<double>(k) - 1.0) * p0) /
                      static_cast<double>(k);
    p0 = p1;
    p1 = pk;
  }
  // P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
  const double dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
  return {p1, dp};
}

}  // namespace

QuadratureRule gauss_legendre(std::size_t n) {
  if (n == 0) throw std::invalid_argument("gauss_legendre: n == 0");
  QuadratureRule rule;
  rule.points.resize(n);
  rule.weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Chebyshev initial guess, then Newton on P_n.
    double x = -std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                         (static_cast<double>(n) + 0.5));
    for (int it = 0; it < 100; ++it) {
      const auto [v, d] = legendre(n, x);
      const double dx = -v / d;
      x += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const auto [v, d] = legendre(n, x);
    (void)v;
    rule.points[i] = x;
    rule.weights[i] = 2.0 / ((1.0 - x * x) * d * d);
  }
  return rule;
}

QuadratureRule gauss_lobatto(std::size_t n) {
  if (n < 2) throw std::invalid_argument("gauss_lobatto: need n >= 2");
  QuadratureRule rule;
  rule.points.resize(n);
  rule.weights.resize(n);
  const std::size_t m = n - 1;  // interior nodes are roots of P'_m
  rule.points.front() = -1.0;
  rule.points.back() = 1.0;
  const double wend =
      2.0 / (static_cast<double>(m) * (static_cast<double>(m) + 1.0));
  rule.weights.front() = wend;
  rule.weights.back() = wend;
  for (std::size_t i = 1; i < m; ++i) {
    // Initial guess: extrema of P_m interlace its roots.
    double x = -std::cos(std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(m));
    for (int it = 0; it < 100; ++it) {
      // Newton on f(x) = P'_m(x). f' from Legendre ODE:
      // (1-x^2) P''_m = 2x P'_m - m(m+1) P_m.
      const auto [v, d] = legendre(m, x);
      const double f = d;
      const double fp = (2.0 * x * d -
                         static_cast<double>(m) * (static_cast<double>(m) + 1.0) * v) /
                        (1.0 - x * x);
      const double dx = -f / fp;
      x += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const auto [v, d] = legendre(m, x);
    (void)d;
    rule.points[i] = x;
    rule.weights[i] =
        2.0 / (static_cast<double>(m) * (static_cast<double>(m) + 1.0) * v * v);
  }
  return rule;
}

}  // namespace tsunami
