#pragma once

// 1-D Lagrange bases and the interpolation/differentiation matrices used by
// the sum-factorized (partial assembly) kernels.
//
// Pressure basis: Lagrange polynomials on GLL nodes of order p (n1 = p+1
// nodes). Velocity basis: Lagrange polynomials on GL nodes of order p-1
// (q = p nodes), which coincide with the volume quadrature points, so the
// velocity mass matrix is diagonal (collocation).

#include <cstddef>
#include <vector>

#include "fem/quadrature.hpp"
#include "linalg/dense.hpp"

namespace tsunami {

/// Values of the Lagrange basis {l_a} on `nodes` evaluated at `x`.
[[nodiscard]] std::vector<double> lagrange_values(
    const std::vector<double>& nodes, double x);

/// Derivatives of the Lagrange basis {l_a} on `nodes` evaluated at `x`.
[[nodiscard]] std::vector<double> lagrange_derivatives(
    const std::vector<double>& nodes, double x);

/// All tables needed by the element kernels for pressure order p.
struct BasisTables {
  explicit BasisTables(std::size_t order);

  std::size_t order;   ///< pressure polynomial order p
  std::size_t n1;      ///< pressure nodes per dim (p+1, GLL)
  std::size_t q;       ///< velocity nodes / quad points per dim (p, GL)

  QuadratureRule gll;  ///< n1-point GLL rule (pressure nodes + mass quad)
  QuadratureRule gl;   ///< q-point GL rule (velocity nodes + volume quad)

  /// B(l, a) = value of pressure basis a at GL point l  (q x n1).
  Matrix interp;
  /// D(l, a) = derivative of pressure basis a at GL point l  (q x n1).
  Matrix deriv;
  /// Bgll(l, a) = value of pressure basis a at GLL point l (identity; kept
  /// for clarity in the lumped-mass setup).
  Matrix interp_gll;
};

}  // namespace tsunami
