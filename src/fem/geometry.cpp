#include "fem/geometry.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

std::array<double, 9> trilinear_jacobian(
    const std::array<std::array<double, 3>, 8>& corners,
    const std::array<double, 3>& xi) {
  std::array<double, 9> j{};
  for (std::size_t cz = 0; cz < 2; ++cz)
    for (std::size_t cy = 0; cy < 2; ++cy)
      for (std::size_t cx = 0; cx < 2; ++cx) {
        const double sx = cx ? 0.5 : -0.5;
        const double sy = cy ? 0.5 : -0.5;
        const double sz = cz ? 0.5 : -0.5;
        const double fx = cx ? 0.5 * (1.0 + xi[0]) : 0.5 * (1.0 - xi[0]);
        const double fy = cy ? 0.5 * (1.0 + xi[1]) : 0.5 * (1.0 - xi[1]);
        const double fz = cz ? 0.5 * (1.0 + xi[2]) : 0.5 * (1.0 - xi[2]);
        const auto& v = corners[cx + 2 * cy + 4 * cz];
        const double dN[3] = {sx * fy * fz, fx * sy * fz, fx * fy * sz};
        for (std::size_t i = 0; i < 3; ++i)
          for (std::size_t d = 0; d < 3; ++d) j[3 * i + d] += v[i] * dN[d];
      }
  return j;
}

double det3(const std::array<double, 9>& j) {
  return j[0] * (j[4] * j[8] - j[5] * j[7]) -
         j[1] * (j[3] * j[8] - j[5] * j[6]) +
         j[2] * (j[3] * j[7] - j[4] * j[6]);
}

std::array<double, 9> det_times_inverse_transpose(
    const std::array<double, 9>& j) {
  // det(J) J^{-T} = adj(J)^T = cofactor matrix of J.
  std::array<double, 9> c{};
  c[0] = j[4] * j[8] - j[5] * j[7];
  c[1] = j[5] * j[6] - j[3] * j[8];
  c[2] = j[3] * j[7] - j[4] * j[6];
  c[3] = j[2] * j[7] - j[1] * j[8];
  c[4] = j[0] * j[8] - j[2] * j[6];
  c[5] = j[1] * j[6] - j[0] * j[7];
  c[6] = j[1] * j[5] - j[2] * j[4];
  c[7] = j[2] * j[3] - j[0] * j[5];
  c[8] = j[0] * j[4] - j[1] * j[3];
  // Cofactor c[3*i+j] corresponds to (det J * J^{-1})_{ji}; transposed gives
  // det J * J^{-T} with rows indexed like J's rows. Laid out so that
  // (out * r)_i = sum_j out[3*i+j] r_j equals det(J) (J^{-T} r)_i.
  return c;
}

PaGeometry build_pa_geometry(const HexMesh& mesh, const BasisTables& tables) {
  PaGeometry g;
  g.nelem = mesh.num_elements();
  g.q = tables.q;
  g.q3 = g.q * g.q * g.q;
  g.grad_factor.assign(g.nelem * g.q3 * 9, 0.0);
  g.wdetj.assign(g.nelem * g.q3, 0.0);
  g.corners.assign(g.nelem * 24, 0.0);

  const auto& pts = tables.gl.points;
  const auto& wts = tables.gl.weights;
  parallel_for(g.nelem, [&](std::size_t e) {
    const auto corners = mesh.element_vertices(e);
    for (std::size_t c = 0; c < 8; ++c)
      for (std::size_t d = 0; d < 3; ++d)
        g.corners[e * 24 + 3 * c + d] = corners[c][d];
    std::size_t pt = 0;
    for (std::size_t n = 0; n < g.q; ++n)
      for (std::size_t m = 0; m < g.q; ++m)
        for (std::size_t l = 0; l < g.q; ++l, ++pt) {
          const std::array<double, 3> xi{pts[l], pts[m], pts[n]};
          const auto j = trilinear_jacobian(corners, xi);
          const double dj = det3(j);
          if (dj <= 0.0)
            throw std::runtime_error(
                "build_pa_geometry: non-positive Jacobian (inverted element)");
          const double w = wts[l] * wts[m] * wts[n];
          const auto cof = det_times_inverse_transpose(j);
          for (std::size_t k = 0; k < 9; ++k)
            g.grad_factor[(e * g.q3 + pt) * 9 + k] = w * cof[k];
          g.wdetj[e * g.q3 + pt] = w * dj;
        }
  });
  return g;
}

namespace {

/// Accumulate one boundary face's GLL-collocated lumped mass into `diag`.
/// `axis` is the reference direction normal to the face; `side` is -1/+1.
void accumulate_face(const H1Space& space, std::size_t ex, std::size_t ey,
                     std::size_t ez, int axis, int side,
                     std::vector<double>& diag) {
  const auto& tables = space.tables();
  const auto& gll = tables.gll;
  const std::size_t n1 = tables.n1;
  const auto corners =
      space.mesh().element_vertices(space.mesh().element_index(ex, ey, ez));

  // Tangential reference directions.
  const int t1 = (axis + 1) % 3;
  const int t2 = (axis + 2) % 3;

  for (std::size_t b2 = 0; b2 < n1; ++b2)
    for (std::size_t b1 = 0; b1 < n1; ++b1) {
      std::array<double, 3> xi{};
      xi[static_cast<std::size_t>(axis)] = side > 0 ? 1.0 : -1.0;
      xi[static_cast<std::size_t>(t1)] = gll.points[b1];
      xi[static_cast<std::size_t>(t2)] = gll.points[b2];
      const auto j = trilinear_jacobian(corners, xi);
      // Tangent vectors are the Jacobian columns t1 and t2.
      std::array<double, 3> u{}, v{};
      for (std::size_t i = 0; i < 3; ++i) {
        u[i] = j[3 * i + static_cast<std::size_t>(t1)];
        v[i] = j[3 * i + static_cast<std::size_t>(t2)];
      }
      const double cx = u[1] * v[2] - u[2] * v[1];
      const double cy = u[2] * v[0] - u[0] * v[2];
      const double cz = u[0] * v[1] - u[1] * v[0];
      const double area = std::sqrt(cx * cx + cy * cy + cz * cz);
      const double w = gll.weights[b1] * gll.weights[b2] * area;

      std::size_t local[3];
      local[static_cast<std::size_t>(axis)] = side > 0 ? n1 - 1 : 0;
      local[static_cast<std::size_t>(t1)] = b1;
      local[static_cast<std::size_t>(t2)] = b2;
      diag[space.element_dof(ex, ey, ez, local[0], local[1], local[2])] += w;
    }
}

}  // namespace

std::vector<double> boundary_mass_diagonal(const H1Space& space,
                                           BoundaryKind kind) {
  const auto& mesh = space.mesh();
  std::vector<double> diag(space.num_dofs(), 0.0);
  switch (kind) {
    case BoundaryKind::Bottom:
      for (std::size_t ey = 0; ey < mesh.ny(); ++ey)
        for (std::size_t ex = 0; ex < mesh.nx(); ++ex)
          accumulate_face(space, ex, ey, 0, 2, -1, diag);
      break;
    case BoundaryKind::Surface:
      for (std::size_t ey = 0; ey < mesh.ny(); ++ey)
        for (std::size_t ex = 0; ex < mesh.nx(); ++ex)
          accumulate_face(space, ex, ey, mesh.nz() - 1, 2, +1, diag);
      break;
    case BoundaryKind::Lateral:
      for (std::size_t ez = 0; ez < mesh.nz(); ++ez) {
        for (std::size_t ey = 0; ey < mesh.ny(); ++ey) {
          accumulate_face(space, 0, ey, ez, 0, -1, diag);
          accumulate_face(space, mesh.nx() - 1, ey, ez, 0, +1, diag);
        }
        for (std::size_t ex = 0; ex < mesh.nx(); ++ex) {
          accumulate_face(space, ex, 0, ez, 1, -1, diag);
          accumulate_face(space, ex, mesh.ny() - 1, ez, 1, +1, diag);
        }
      }
      break;
  }
  return diag;
}

std::vector<double> h1_lumped_mass(const H1Space& space) {
  const auto& mesh = space.mesh();
  const auto& tables = space.tables();
  const auto& gll = tables.gll;
  const std::size_t n1 = tables.n1;
  std::vector<double> diag(space.num_dofs(), 0.0);
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.element_coords(e);
    const auto corners = mesh.element_vertices(e);
    for (std::size_t lc = 0; lc < n1; ++lc)
      for (std::size_t lb = 0; lb < n1; ++lb)
        for (std::size_t la = 0; la < n1; ++la) {
          const std::array<double, 3> xi{gll.points[la], gll.points[lb],
                                         gll.points[lc]};
          const auto j = trilinear_jacobian(corners, xi);
          const double w =
              gll.weights[la] * gll.weights[lb] * gll.weights[lc] * det3(j);
          diag[space.element_dof(c[0], c[1], c[2], la, lb, lc)] += w;
        }
  }
  return diag;
}

}  // namespace tsunami
