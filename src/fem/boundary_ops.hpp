#pragma once

// Physical boundary operators of the acoustic-gravity system (Eq. (1)/(4)):
//
//   sea surface  dOmega_s :  <(rho g)^-1 p, v>  -> lumped diagonal added to
//                            the pressure mass (the gravity-wave condition),
//   lateral      dOmega_a :  <Z^-1 p, v>        -> lumped diagonal applied
//                            inside A (first-order absorbing condition),
//   seafloor     dOmega_b :  <m, v>             -> the parameter-to-RHS map
//                            L (diagonal over the seafloor GLL plane), whose
//                            transpose extracts p2o rows in the adjoint.
//
// The seafloor plane's GLL nodes double as the spatial parameter grid of the
// inverse problem (dimension Nm = nx1 * ny1).

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "fem/geometry.hpp"
#include "fem/h1_space.hpp"

namespace tsunami {

/// Seawater / gravity constants used across the model.
struct PhysicalConstants {
  double rho = 1025.0;          ///< seawater density [kg/m^3]
  double sound_speed = 1484.0;  ///< speed of sound in seawater [m/s]
  double gravity = 9.81;        ///< gravitational acceleration [m/s^2]

  [[nodiscard]] double bulk_modulus() const {
    return rho * sound_speed * sound_speed;
  }
  [[nodiscard]] double impedance() const { return rho * sound_speed; }
};

/// Diagonal map L between the seafloor parameter grid (size Nm) and pressure
/// RHS vectors (size Np): (L m)_i = w_i m_i on seafloor nodes, 0 elsewhere.
/// Seafloor nodes are the first Nm global pressure DOFs by construction.
class BottomSourceMap {
 public:
  BottomSourceMap(const H1Space& space);

  [[nodiscard]] std::size_t parameter_dim() const { return weights_.size(); }
  [[nodiscard]] std::size_t pressure_dim() const { return np_; }

  /// rhs (size Np, zeroed first) = L m.
  void apply(std::span<const double> m, std::span<double> rhs) const;

  /// out (size Nm) = L^T y  (restriction to the seafloor plane + weights).
  void apply_transpose(std::span<const double> y, std::span<double> out) const;

  /// Boundary-mass weights over the parameter grid (w_i).
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Physical (x, y) footprint coordinates of parameter node r.
  [[nodiscard]] std::array<double, 2> node_xy(std::size_t r) const;

  [[nodiscard]] std::size_t grid_nx() const { return nx1_; }
  [[nodiscard]] std::size_t grid_ny() const { return ny1_; }

 private:
  const H1Space& space_;
  std::size_t np_;
  std::size_t nx1_, ny1_;
  std::vector<double> weights_;
};

/// Diagonal of the free-surface term <(rho g)^-1 p, v> over pressure DOFs.
[[nodiscard]] std::vector<double> surface_gravity_diagonal(
    const H1Space& space, const PhysicalConstants& constants);

/// Diagonal of the absorbing term <Z^-1 p, v> over pressure DOFs.
[[nodiscard]] std::vector<double> absorbing_diagonal(
    const H1Space& space, const PhysicalConstants& constants);

}  // namespace tsunami
