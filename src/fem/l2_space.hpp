#pragma once

// L2-conforming (discontinuous) vector space of order p-1 — the velocity
// space. DOFs are nodal on the Gauss-Legendre points, element-local with no
// inter-element coupling, so the layout is per-element contiguous:
//   u[(e * 3 + d) * q^3 + node],  node = l + q*(m + q*n).
// Collocation of the velocity nodes with the volume quadrature points makes
// the velocity mass matrix diagonal (spectral-element lumping, as the paper's
// lumped mass matrix M).

#include <cstddef>

#include "fem/basis.hpp"
#include "mesh/hex_mesh.hpp"

namespace tsunami {

class L2Space {
 public:
  L2Space(const HexMesh& mesh, const BasisTables& tables)
      : nelem_(mesh.num_elements()), q_(tables.q), q3_(q_ * q_ * q_) {}

  [[nodiscard]] std::size_t num_dofs() const { return nelem_ * 3 * q3_; }
  [[nodiscard]] std::size_t nodes_per_element() const { return q3_; }
  [[nodiscard]] std::size_t num_elements() const { return nelem_; }

  /// Offset of (element e, component d) block of length q^3.
  [[nodiscard]] std::size_t block_offset(std::size_t e, std::size_t d) const {
    return (e * 3 + d) * q3_;
  }

  /// Full DOF index for (element, component, node).
  [[nodiscard]] std::size_t dof(std::size_t e, std::size_t d,
                                std::size_t node) const {
    return block_offset(e, d) + node;
  }

 private:
  std::size_t nelem_;
  std::size_t q_;
  std::size_t q3_;
};

}  // namespace tsunami
