#include "fem/pa_kernels.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

// Stack-buffer capacity: supports pressure order <= 7 in the dynamic kernels.
constexpr std::size_t kMaxN1 = 8;
constexpr std::size_t kMaxQ = 7;

}  // namespace

std::string to_string(KernelVariant v) {
  switch (v) {
    case KernelVariant::InitialPA: return "Initial PA";
    case KernelVariant::SharedPA: return "Shared PA";
    case KernelVariant::OptimizedPA: return "Optimized PA";
    case KernelVariant::FusedPA: return "Fused PA";
    case KernelVariant::FusedMF: return "Fused MF";
  }
  return "?";
}

const std::vector<KernelVariant>& all_kernel_variants() {
  static const std::vector<KernelVariant> kAll{
      KernelVariant::InitialPA, KernelVariant::SharedPA,
      KernelVariant::OptimizedPA, KernelVariant::FusedPA,
      KernelVariant::FusedMF};
  return kAll;
}

KernelCosts estimate_kernel_costs(KernelVariant v, std::size_t order,
                                  std::size_t nelem) {
  const double n1 = static_cast<double>(order + 1);
  const double q = static_cast<double>(order);
  const double n13 = n1 * n1 * n1, q3 = q * q * q;
  KernelCosts c;
  const double geometry_flops = 36.0 * q3;  // G r and G^T u at each point
  double tensor_flops;
  if (v == KernelVariant::InitialPA) {
    tensor_flops = 12.0 * q3 * n13;  // all-basis quadrature loops, both blocks
  } else {
    // Sum-factorized contractions, both directions.
    tensor_flops = 2.0 * (4.0 * q * n13 + 6.0 * q * q * n1 * n1 + 6.0 * q3 * n1);
  }
  double mf_flops = 0.0;
  double geom_bytes = 9.0 * 8.0 * q3;  // stored grad factors
  if (v == KernelVariant::FusedMF) {
    mf_flops = 190.0 * q3;  // trilinear J + cofactors + det at each point
    geom_bytes = 24.0 * 8.0;  // corner coordinates only
  }
  const double state_bytes =
      8.0 * (n13 /*gather p*/ + 2.0 * n13 /*accumulate p_out*/ +
             3.0 * q3 /*read u*/ + 3.0 * q3 /*write u_out*/);
  c.flops = static_cast<double>(nelem) * (tensor_flops + geometry_flops + mf_flops);
  c.bytes = static_cast<double>(nelem) * (state_bytes + geom_bytes);
  // Unfused variants sweep elements twice: geometry and gathers reload.
  if (v != KernelVariant::FusedPA && v != KernelVariant::FusedMF)
    c.bytes += static_cast<double>(nelem) * (geom_bytes + 8.0 * n13);
  return c;
}

MixedOperator::MixedOperator(const H1Space& h1, const L2Space& l2,
                             const PaGeometry& geom, const BasisTables& tables,
                             KernelVariant variant)
    : h1_(h1), l2_(l2), geom_(geom), tables_(tables), variant_(variant) {
  if (tables_.n1 > kMaxN1)
    throw std::invalid_argument("MixedOperator: order too high for kernels");
  const auto& mesh = h1_.mesh();
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.element_coords(e);
    colors_[(c[0] % 2) + 2 * (c[1] % 2) + 4 * (c[2] % 2)].push_back(e);
  }
  // InitialPA reference tables: gradient of each basis function at each
  // quadrature point (shared across elements).
  const std::size_t n1 = tables_.n1, q = tables_.q;
  const std::size_t n13 = n1 * n1 * n1, q3 = q * q * q;
  phi_grad_.assign(q3 * n13 * 3, 0.0);
  const Matrix& B = tables_.interp;
  const Matrix& D = tables_.deriv;
  for (std::size_t n = 0; n < q; ++n)
    for (std::size_t m = 0; m < q; ++m)
      for (std::size_t l = 0; l < q; ++l) {
        const std::size_t pt = l + q * (m + q * n);
        for (std::size_t cc = 0; cc < n1; ++cc)
          for (std::size_t bb = 0; bb < n1; ++bb)
            for (std::size_t aa = 0; aa < n1; ++aa) {
              const std::size_t dof = aa + n1 * (bb + n1 * cc);
              double* g = &phi_grad_[(pt * n13 + dof) * 3];
              g[0] = D(l, aa) * B(m, bb) * B(n, cc);
              g[1] = B(l, aa) * D(m, bb) * B(n, cc);
              g[2] = B(l, aa) * B(m, bb) * D(n, cc);
            }
      }
}

void MixedOperator::apply_blocks(std::span<const double> p_in,
                                 std::span<const double> u_in,
                                 std::span<double> u_out,
                                 std::span<double> p_out, double sign_grad,
                                 double sign_div) const {
  if (p_in.size() != h1_.num_dofs() || p_out.size() != h1_.num_dofs() ||
      u_in.size() != l2_.num_dofs() || u_out.size() != l2_.num_dofs())
    throw std::invalid_argument("MixedOperator::apply_blocks: size mismatch");

  std::fill(p_out.begin(), p_out.end(), 0.0);

  switch (variant_) {
    case KernelVariant::InitialPA:
      apply_initial(p_in, u_in, u_out, p_out, sign_grad, sign_div);
      return;
    case KernelVariant::SharedPA:
      apply_shared(p_in, u_in, u_out, p_out, sign_grad, sign_div);
      return;
    default:
      break;
  }
  const bool fused = variant_ == KernelVariant::FusedPA ||
                     variant_ == KernelVariant::FusedMF;
  const bool mf = variant_ == KernelVariant::FusedMF;
  switch (tables_.order) {
    case 1: apply_optimized<1>(p_in, u_in, u_out, p_out, sign_grad, sign_div, fused, mf); return;
    case 2: apply_optimized<2>(p_in, u_in, u_out, p_out, sign_grad, sign_div, fused, mf); return;
    case 3: apply_optimized<3>(p_in, u_in, u_out, p_out, sign_grad, sign_div, fused, mf); return;
    case 4: apply_optimized<4>(p_in, u_in, u_out, p_out, sign_grad, sign_div, fused, mf); return;
    default:
      // High orders fall back to the dynamic sum-factorized kernel.
      apply_shared(p_in, u_in, u_out, p_out, sign_grad, sign_div);
      return;
  }
}

namespace {

/// Gather the element-local pressure DOFs.
inline void gather_pressure(const H1Space& h1, std::size_t ex, std::size_t ey,
                            std::size_t ez, const double* p, double* pe) {
  const std::size_t n1 = h1.tables().n1;
  std::size_t idx = 0;
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a, ++idx)
        pe[idx] = p[h1.element_dof(ex, ey, ez, a, b, c)];
}

/// Scatter-add element-local pressure contributions.
inline void scatter_pressure(const H1Space& h1, std::size_t ex, std::size_t ey,
                             std::size_t ez, const double* pe, double* p) {
  const std::size_t n1 = h1.tables().n1;
  std::size_t idx = 0;
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a, ++idx)
        p[h1.element_dof(ex, ey, ez, a, b, c)] += pe[idx];
}

/// Recompute w * det(J) * J^{-T} at reference point xi from flat corners
/// (the matrix-free geometry path).
inline void mf_grad_factor(const double* corners, const double xi[3], double w,
                           double g_out[9]) {
  double j[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t cz = 0; cz < 2; ++cz)
    for (std::size_t cy = 0; cy < 2; ++cy)
      for (std::size_t cx = 0; cx < 2; ++cx) {
        const double sx = cx ? 0.5 : -0.5;
        const double sy = cy ? 0.5 : -0.5;
        const double sz = cz ? 0.5 : -0.5;
        const double fx = cx ? 0.5 * (1.0 + xi[0]) : 0.5 * (1.0 - xi[0]);
        const double fy = cy ? 0.5 * (1.0 + xi[1]) : 0.5 * (1.0 - xi[1]);
        const double fz = cz ? 0.5 * (1.0 + xi[2]) : 0.5 * (1.0 - xi[2]);
        const double* v = corners + 3 * (cx + 2 * cy + 4 * cz);
        const double dn[3] = {sx * fy * fz, fx * sy * fz, fx * fy * sz};
        for (int i = 0; i < 3; ++i)
          for (int d = 0; d < 3; ++d) j[3 * i + d] += v[i] * dn[d];
      }
  // Cofactor matrix = det(J) J^{-T}.
  g_out[0] = w * (j[4] * j[8] - j[5] * j[7]);
  g_out[1] = w * (j[5] * j[6] - j[3] * j[8]);
  g_out[2] = w * (j[3] * j[7] - j[4] * j[6]);
  g_out[3] = w * (j[2] * j[7] - j[1] * j[8]);
  g_out[4] = w * (j[0] * j[8] - j[2] * j[6]);
  g_out[5] = w * (j[1] * j[6] - j[0] * j[7]);
  g_out[6] = w * (j[1] * j[5] - j[2] * j[4]);
  g_out[7] = w * (j[2] * j[3] - j[0] * j[5]);
  g_out[8] = w * (j[0] * j[4] - j[1] * j[3]);
}

}  // namespace

void MixedOperator::apply_initial(std::span<const double> p_in,
                                  std::span<const double> u_in,
                                  std::span<double> u_out,
                                  std::span<double> p_out, double sg,
                                  double sd) const {
  const std::size_t n1 = tables_.n1, q = tables_.q;
  const std::size_t n13 = n1 * n1 * n1, q3 = q * q * q;
  const auto& mesh = h1_.mesh();
  const double* gf = geom_.grad_factor.data();
  const double* tab = phi_grad_.data();

  for (const auto& color : colors_) {
    parallel_for(color.size(), [&](std::size_t ci) {
      const std::size_t e = color[ci];
      const auto ec = mesh.element_coords(e);
      double pe[kMaxN1 * kMaxN1 * kMaxN1];
      double acc[kMaxN1 * kMaxN1 * kMaxN1];
      gather_pressure(h1_, ec[0], ec[1], ec[2], p_in.data(), pe);
      std::memset(acc, 0, n13 * sizeof(double));

      const double* ue = u_in.data() + l2_.block_offset(e, 0);
      double* uo = u_out.data() + l2_.block_offset(e, 0);

      for (std::size_t pt = 0; pt < q3; ++pt) {
        const double* G = gf + (e * q3 + pt) * 9;
        // Divergence-side geometry first: s = G^T u at this point.
        const double ux = ue[0 * q3 + pt], uy = ue[1 * q3 + pt],
                     uz = ue[2 * q3 + pt];
        const double s0 = G[0] * ux + G[3] * uy + G[6] * uz;
        const double s1 = G[1] * ux + G[4] * uy + G[7] * uz;
        const double s2 = G[2] * ux + G[5] * uy + G[8] * uz;
        // One fused all-basis sweep: the reference-gradient row trow is
        // loaded once per point and feeds BOTH the gradient evaluation
        // (g += trow^T pe) and the divergence accumulation (acc += trow s),
        // instead of the former two back-to-back loops over the same row.
        double g[3] = {0.0, 0.0, 0.0};
        const double* trow = tab + pt * n13 * 3;
        for (std::size_t dof = 0; dof < n13; ++dof) {
          const double t0 = trow[3 * dof + 0], t1 = trow[3 * dof + 1],
                       t2 = trow[3 * dof + 2];
          const double pv = pe[dof];
          g[0] += t0 * pv;
          g[1] += t1 * pv;
          g[2] += t2 * pv;
          acc[dof] += t0 * s0 + t1 * s1 + t2 * s2;
        }
        // Gradient block: out_u = sg * G g.
        for (std::size_t d = 0; d < 3; ++d)
          uo[d * q3 + pt] =
              sg * (G[3 * d] * g[0] + G[3 * d + 1] * g[1] + G[3 * d + 2] * g[2]);
      }
      for (std::size_t dof = 0; dof < n13; ++dof) acc[dof] *= sd;
      scatter_pressure(h1_, ec[0], ec[1], ec[2], acc, p_out.data());
    });
  }
}

void MixedOperator::apply_shared(std::span<const double> p_in,
                                 std::span<const double> u_in,
                                 std::span<double> u_out,
                                 std::span<double> p_out, double sg,
                                 double sd) const {
  const std::size_t n1 = tables_.n1, q = tables_.q;
  const std::size_t q3 = q * q * q;
  const auto& mesh = h1_.mesh();
  const double* gf = geom_.grad_factor.data();
  const double* B = tables_.interp.data();
  const double* D = tables_.deriv.data();

  // Sweep 1 (all elements in parallel): gradient block into u_out.
  parallel_for(mesh.num_elements(), [&](std::size_t e) {
    {
      const auto ec = mesh.element_coords(e);
      double pe[kMaxN1 * kMaxN1 * kMaxN1];
      gather_pressure(h1_, ec[0], ec[1], ec[2], p_in.data(), pe);

      // ---- gradient: sum-factorized E p, then geometry ----
      double t1B[kMaxQ * kMaxN1 * kMaxN1], t1D[kMaxQ * kMaxN1 * kMaxN1];
      for (std::size_t c = 0; c < n1; ++c)
        for (std::size_t b = 0; b < n1; ++b)
          for (std::size_t l = 0; l < q; ++l) {
            double sB = 0.0, sD = 0.0;
            const double* col = pe + n1 * (b + n1 * c);
            for (std::size_t a = 0; a < n1; ++a) {
              sB += B[l * n1 + a] * col[a];
              sD += D[l * n1 + a] * col[a];
            }
            t1B[l + q * (b + n1 * c)] = sB;
            t1D[l + q * (b + n1 * c)] = sD;
          }
      double t2BB[kMaxQ * kMaxQ * kMaxN1], t2BD[kMaxQ * kMaxQ * kMaxN1],
          t2DB[kMaxQ * kMaxQ * kMaxN1];
      for (std::size_t c = 0; c < n1; ++c)
        for (std::size_t m = 0; m < q; ++m)
          for (std::size_t l = 0; l < q; ++l) {
            double sBB = 0.0, sBD = 0.0, sDB = 0.0;
            for (std::size_t b = 0; b < n1; ++b) {
              const double vB = t1B[l + q * (b + n1 * c)];
              const double vD = t1D[l + q * (b + n1 * c)];
              sBB += B[m * n1 + b] * vB;
              sBD += D[m * n1 + b] * vB;
              sDB += B[m * n1 + b] * vD;
            }
            t2BB[l + q * (m + q * c)] = sBB;
            t2BD[l + q * (m + q * c)] = sBD;
            t2DB[l + q * (m + q * c)] = sDB;
          }
      double gx[kMaxQ * kMaxQ * kMaxQ], gy[kMaxQ * kMaxQ * kMaxQ],
          gz[kMaxQ * kMaxQ * kMaxQ];
      for (std::size_t n = 0; n < q; ++n)
        for (std::size_t m = 0; m < q; ++m)
          for (std::size_t l = 0; l < q; ++l) {
            double sx = 0.0, sy = 0.0, sz = 0.0;
            for (std::size_t c = 0; c < n1; ++c) {
              sx += B[n * n1 + c] * t2DB[l + q * (m + q * c)];
              sy += B[n * n1 + c] * t2BD[l + q * (m + q * c)];
              sz += D[n * n1 + c] * t2BB[l + q * (m + q * c)];
            }
            const std::size_t pt = l + q * (m + q * n);
            gx[pt] = sx;
            gy[pt] = sy;
            gz[pt] = sz;
          }
      double* uo = u_out.data() + l2_.block_offset(e, 0);
      for (std::size_t pt = 0; pt < q3; ++pt) {
        const double* G = gf + (e * q3 + pt) * 9;
        uo[0 * q3 + pt] = sg * (G[0] * gx[pt] + G[1] * gy[pt] + G[2] * gz[pt]);
        uo[1 * q3 + pt] = sg * (G[3] * gx[pt] + G[4] * gy[pt] + G[5] * gz[pt]);
        uo[2 * q3 + pt] = sg * (G[6] * gx[pt] + G[7] * gy[pt] + G[8] * gz[pt]);
      }
    }
  });

  // Sweep 2 (colored): divergence block into p_out.
  for (const auto& color : colors_) {
    parallel_for(color.size(), [&](std::size_t ci) {
      const std::size_t e = color[ci];
      const auto ec = mesh.element_coords(e);
      const double* ue = u_in.data() + l2_.block_offset(e, 0);
      double sx[kMaxQ * kMaxQ * kMaxQ], sy[kMaxQ * kMaxQ * kMaxQ],
          sz[kMaxQ * kMaxQ * kMaxQ];
      for (std::size_t pt = 0; pt < q3; ++pt) {
        const double* G = gf + (e * q3 + pt) * 9;
        const double ux = ue[0 * q3 + pt], uy = ue[1 * q3 + pt],
                     uz = ue[2 * q3 + pt];
        sx[pt] = G[0] * ux + G[3] * uy + G[6] * uz;
        sy[pt] = G[1] * ux + G[4] * uy + G[7] * uz;
        sz[pt] = G[2] * ux + G[5] * uy + G[8] * uz;
      }

      // ---- divergence: transposed contractions of (sx, sy, sz) ----
      double r1x[kMaxQ * kMaxQ * kMaxN1], r1y[kMaxQ * kMaxQ * kMaxN1],
          r1z[kMaxQ * kMaxQ * kMaxN1];
      for (std::size_t c = 0; c < n1; ++c)
        for (std::size_t m = 0; m < q; ++m)
          for (std::size_t l = 0; l < q; ++l) {
            double ax = 0.0, ay = 0.0, az = 0.0;
            for (std::size_t n = 0; n < q; ++n) {
              const std::size_t pt = l + q * (m + q * n);
              ax += B[n * n1 + c] * sx[pt];
              ay += B[n * n1 + c] * sy[pt];
              az += D[n * n1 + c] * sz[pt];
            }
            r1x[l + q * (m + q * c)] = ax;
            r1y[l + q * (m + q * c)] = ay;
            r1z[l + q * (m + q * c)] = az;
          }
      double r2x[kMaxQ * kMaxN1 * kMaxN1], r2yz[kMaxQ * kMaxN1 * kMaxN1];
      for (std::size_t c = 0; c < n1; ++c)
        for (std::size_t b = 0; b < n1; ++b)
          for (std::size_t l = 0; l < q; ++l) {
            double ax = 0.0, ayz = 0.0;
            for (std::size_t m = 0; m < q; ++m) {
              const std::size_t idx = l + q * (m + q * c);
              ax += B[m * n1 + b] * r1x[idx];
              ayz += D[m * n1 + b] * r1y[idx] + B[m * n1 + b] * r1z[idx];
            }
            r2x[l + q * (b + n1 * c)] = ax;
            r2yz[l + q * (b + n1 * c)] = ayz;
          }
      double acc[kMaxN1 * kMaxN1 * kMaxN1];
      for (std::size_t c = 0; c < n1; ++c)
        for (std::size_t b = 0; b < n1; ++b)
          for (std::size_t a = 0; a < n1; ++a) {
            double s = 0.0;
            for (std::size_t l = 0; l < q; ++l) {
              const std::size_t idx = l + q * (b + n1 * c);
              s += D[l * n1 + a] * r2x[idx] + B[l * n1 + a] * r2yz[idx];
            }
            acc[a + n1 * (b + n1 * c)] = sd * s;
          }
      scatter_pressure(h1_, ec[0], ec[1], ec[2], acc, p_out.data());
    });
  }
}

template <int P>
void MixedOperator::apply_optimized(std::span<const double> p_in,
                                    std::span<const double> u_in,
                                    std::span<double> u_out,
                                    std::span<double> p_out, double sg,
                                    double sd, bool fused,
                                    bool matrix_free) const {
  constexpr std::size_t n1 = P + 1;
  constexpr std::size_t q = P;
  constexpr std::size_t n13 = n1 * n1 * n1;
  constexpr std::size_t q3 = q * q * q;
  const auto& mesh = h1_.mesh();
  const double* __restrict gf = geom_.grad_factor.data();
  const double* __restrict corners_flat = geom_.corners.data();
  double Bm[q][n1], Dm[q][n1];
  for (std::size_t l = 0; l < q; ++l)
    for (std::size_t a = 0; a < n1; ++a) {
      Bm[l][a] = tables_.interp(l, a);
      Dm[l][a] = tables_.deriv(l, a);
    }
  const auto& glp = tables_.gl.points;
  const auto& glw = tables_.gl.weights;

  // Element body: gradient into u_out and (optionally) divergence into acc.
  auto element_grad = [&](std::size_t e, double g_pt[3][q3]) {
    const auto ec = mesh.element_coords(e);
    double pe[n13];
    gather_pressure(h1_, ec[0], ec[1], ec[2], p_in.data(), pe);
    double t1B[q][n1][n1], t1D[q][n1][n1];
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t l = 0; l < q; ++l) {
          double sB = 0.0, sD = 0.0;
          const double* __restrict col = pe + n1 * (b + n1 * c);
          for (std::size_t a = 0; a < n1; ++a) {
            sB += Bm[l][a] * col[a];
            sD += Dm[l][a] * col[a];
          }
          t1B[l][b][c] = sB;
          t1D[l][b][c] = sD;
        }
    double t2BB[q][q][n1], t2BD[q][q][n1], t2DB[q][q][n1];
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t m = 0; m < q; ++m)
        for (std::size_t l = 0; l < q; ++l) {
          double sBB = 0.0, sBD = 0.0, sDB = 0.0;
          for (std::size_t b = 0; b < n1; ++b) {
            sBB += Bm[m][b] * t1B[l][b][c];
            sBD += Dm[m][b] * t1B[l][b][c];
            sDB += Bm[m][b] * t1D[l][b][c];
          }
          t2BB[l][m][c] = sBB;
          t2BD[l][m][c] = sBD;
          t2DB[l][m][c] = sDB;
        }
    for (std::size_t n = 0; n < q; ++n)
      for (std::size_t m = 0; m < q; ++m)
        for (std::size_t l = 0; l < q; ++l) {
          double sx = 0.0, sy = 0.0, sz = 0.0;
          for (std::size_t c = 0; c < n1; ++c) {
            sx += Bm[n][c] * t2DB[l][m][c];
            sy += Bm[n][c] * t2BD[l][m][c];
            sz += Dm[n][c] * t2BB[l][m][c];
          }
          const std::size_t pt = l + q * (m + q * n);
          g_pt[0][pt] = sx;
          g_pt[1][pt] = sy;
          g_pt[2][pt] = sz;
        }
  };

  auto load_factor = [&](std::size_t e, std::size_t pt, double Gmf[9]) {
    if (matrix_free) {
      const std::size_t l = pt % q, m = (pt / q) % q, n = pt / (q * q);
      const double xi[3] = {glp[l], glp[m], glp[n]};
      mf_grad_factor(corners_flat + e * 24, xi, glw[l] * glw[m] * glw[n], Gmf);
      return static_cast<const double*>(Gmf);
    }
    return gf + (e * q3 + pt) * 9;
  };

  // Geometry stage, gradient side: out_u = sg * G g.
  auto geometry_grad = [&](std::size_t e, const double g_pt[3][q3],
                           double* uo) {
    double Gmf[9];
    for (std::size_t pt = 0; pt < q3; ++pt) {
      const double* G = load_factor(e, pt, Gmf);
      uo[0 * q3 + pt] =
          sg * (G[0] * g_pt[0][pt] + G[1] * g_pt[1][pt] + G[2] * g_pt[2][pt]);
      uo[1 * q3 + pt] =
          sg * (G[3] * g_pt[0][pt] + G[4] * g_pt[1][pt] + G[5] * g_pt[2][pt]);
      uo[2 * q3 + pt] =
          sg * (G[6] * g_pt[0][pt] + G[7] * g_pt[1][pt] + G[8] * g_pt[2][pt]);
    }
  };

  // Geometry stage, divergence side: s = G^T u.
  auto geometry_div = [&](std::size_t e, const double* ue,
                          double s_pt[3][q3]) {
    double Gmf[9];
    for (std::size_t pt = 0; pt < q3; ++pt) {
      const double* G = load_factor(e, pt, Gmf);
      const double ux = ue[0 * q3 + pt], uy = ue[1 * q3 + pt],
                   uz = ue[2 * q3 + pt];
      s_pt[0][pt] = G[0] * ux + G[3] * uy + G[6] * uz;
      s_pt[1][pt] = G[1] * ux + G[4] * uy + G[7] * uz;
      s_pt[2][pt] = G[2] * ux + G[5] * uy + G[8] * uz;
    }
  };

  // Fused geometry stage: one pass loads G once for both sides.
  auto geometry_fused = [&](std::size_t e, const double g_pt[3][q3],
                            double s_pt[3][q3], double* uo, const double* ue) {
    double Gmf[9];
    for (std::size_t pt = 0; pt < q3; ++pt) {
      const double* G = load_factor(e, pt, Gmf);
      uo[0 * q3 + pt] =
          sg * (G[0] * g_pt[0][pt] + G[1] * g_pt[1][pt] + G[2] * g_pt[2][pt]);
      uo[1 * q3 + pt] =
          sg * (G[3] * g_pt[0][pt] + G[4] * g_pt[1][pt] + G[5] * g_pt[2][pt]);
      uo[2 * q3 + pt] =
          sg * (G[6] * g_pt[0][pt] + G[7] * g_pt[1][pt] + G[8] * g_pt[2][pt]);
      const double ux = ue[0 * q3 + pt], uy = ue[1 * q3 + pt],
                   uz = ue[2 * q3 + pt];
      s_pt[0][pt] = G[0] * ux + G[3] * uy + G[6] * uz;
      s_pt[1][pt] = G[1] * ux + G[4] * uy + G[7] * uz;
      s_pt[2][pt] = G[2] * ux + G[5] * uy + G[8] * uz;
    }
  };

  auto element_div = [&](std::size_t e, const double s_pt[3][q3]) {
    const auto ec = mesh.element_coords(e);
    double r1x[q][q][n1], r1y[q][q][n1], r1z[q][q][n1];
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t m = 0; m < q; ++m)
        for (std::size_t l = 0; l < q; ++l) {
          double ax = 0.0, ay = 0.0, az = 0.0;
          for (std::size_t n = 0; n < q; ++n) {
            const std::size_t pt = l + q * (m + q * n);
            ax += Bm[n][c] * s_pt[0][pt];
            ay += Bm[n][c] * s_pt[1][pt];
            az += Dm[n][c] * s_pt[2][pt];
          }
          r1x[l][m][c] = ax;
          r1y[l][m][c] = ay;
          r1z[l][m][c] = az;
        }
    double r2x[q][n1][n1], r2yz[q][n1][n1];
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t l = 0; l < q; ++l) {
          double ax = 0.0, ayz = 0.0;
          for (std::size_t m = 0; m < q; ++m) {
            ax += Bm[m][b] * r1x[l][m][c];
            ayz += Dm[m][b] * r1y[l][m][c] + Bm[m][b] * r1z[l][m][c];
          }
          r2x[l][b][c] = ax;
          r2yz[l][b][c] = ayz;
        }
    double acc[n13];
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t a = 0; a < n1; ++a) {
          double s = 0.0;
          for (std::size_t l = 0; l < q; ++l)
            s += Dm[l][a] * r2x[l][b][c] + Bm[l][a] * r2yz[l][b][c];
          acc[a + n1 * (b + n1 * c)] = sd * s;
        }
    scatter_pressure(h1_, ec[0], ec[1], ec[2], acc, p_out.data());
  };

  if (fused) {
    // One sweep: both blocks per element visit (colored for the scatter),
    // geometry factors loaded exactly once per point.
    for (const auto& color : colors_) {
      parallel_for(color.size(), [&](std::size_t ci) {
        const std::size_t e = color[ci];
        double g_pt[3][q3], s_pt[3][q3];
        element_grad(e, g_pt);
        geometry_fused(e, g_pt, s_pt, u_out.data() + l2_.block_offset(e, 0),
                       u_in.data() + l2_.block_offset(e, 0));
        element_div(e, s_pt);
      });
    }
  } else {
    // Two sweeps: gradient over all elements (element-private writes), then
    // divergence over colors; geometry factors are traversed twice.
    parallel_for(mesh.num_elements(), [&](std::size_t e) {
      double g_pt[3][q3];
      element_grad(e, g_pt);
      geometry_grad(e, g_pt, u_out.data() + l2_.block_offset(e, 0));
    });
    for (const auto& color : colors_) {
      parallel_for(color.size(), [&](std::size_t ci) {
        const std::size_t e = color[ci];
        double s_pt[3][q3];
        geometry_div(e, u_in.data() + l2_.block_offset(e, 0), s_pt);
        element_div(e, s_pt);
      });
    }
  }
}

template void MixedOperator::apply_optimized<1>(std::span<const double>,
                                                std::span<const double>,
                                                std::span<double>,
                                                std::span<double>, double,
                                                double, bool, bool) const;
template void MixedOperator::apply_optimized<2>(std::span<const double>,
                                                std::span<const double>,
                                                std::span<double>,
                                                std::span<double>, double,
                                                double, bool, bool) const;
template void MixedOperator::apply_optimized<3>(std::span<const double>,
                                                std::span<const double>,
                                                std::span<double>,
                                                std::span<double>, double,
                                                double, bool, bool) const;
template void MixedOperator::apply_optimized<4>(std::span<const double>,
                                                std::span<const double>,
                                                std::span<double>,
                                                std::span<double>, double,
                                                double, bool, bool) const;

}  // namespace tsunami
