#include "fem/boundary_ops.hpp"

#include <stdexcept>

namespace tsunami {

BottomSourceMap::BottomSourceMap(const H1Space& space)
    : space_(space),
      np_(space.num_dofs()),
      nx1_(space.nx1()),
      ny1_(space.ny1()) {
  const auto diag = boundary_mass_diagonal(space, BoundaryKind::Bottom);
  // Seafloor nodes are the plane c = 0: the first nx1*ny1 global DOFs.
  weights_.assign(diag.begin(),
                  diag.begin() + static_cast<std::ptrdiff_t>(nx1_ * ny1_));
}

void BottomSourceMap::apply(std::span<const double> m,
                            std::span<double> rhs) const {
  if (m.size() != weights_.size() || rhs.size() != np_)
    throw std::invalid_argument("BottomSourceMap::apply: size mismatch");
  std::fill(rhs.begin(), rhs.end(), 0.0);
  for (std::size_t r = 0; r < weights_.size(); ++r)
    rhs[r] = weights_[r] * m[r];
}

void BottomSourceMap::apply_transpose(std::span<const double> y,
                                      std::span<double> out) const {
  if (y.size() != np_ || out.size() != weights_.size())
    throw std::invalid_argument(
        "BottomSourceMap::apply_transpose: size mismatch");
  for (std::size_t r = 0; r < weights_.size(); ++r)
    out[r] = weights_[r] * y[r];
}

std::array<double, 2> BottomSourceMap::node_xy(std::size_t r) const {
  const std::size_t a = r % nx1_;
  const std::size_t b = r / nx1_;
  const auto xyz = space_.node_coords(a, b, 0);
  return {xyz[0], xyz[1]};
}

std::vector<double> surface_gravity_diagonal(
    const H1Space& space, const PhysicalConstants& constants) {
  auto diag = boundary_mass_diagonal(space, BoundaryKind::Surface);
  const double coeff = 1.0 / (constants.rho * constants.gravity);
  for (auto& v : diag) v *= coeff;
  return diag;
}

std::vector<double> absorbing_diagonal(const H1Space& space,
                                       const PhysicalConstants& constants) {
  auto diag = boundary_mass_diagonal(space, BoundaryKind::Lateral);
  const double coeff = 1.0 / constants.impedance();
  for (auto& v : diag) v *= coeff;
  return diag;
}

}  // namespace tsunami
