#pragma once

// Partial-assembly element kernels for the mixed acoustic-gravity operator.
//
// The wave operator's off-diagonal blocks (Eq. (4) of the paper) are
//   gradient block   :  (nabla p, tau)      : H1 -> L2^3
//   divergence block : -(u, nabla v)        : L2^3 -> H1
// Both reduce to the weighted evaluation operator B = W E with
//   (E p)_q = J_q^{-T} grad_ref p (x_q),  W = diag(w_q det J_q),
// so gradient = B and divergence-transpose = B^T: applying the pair is the
// dominant cost of each RK4 stage (the "two key kernels" of Fig. 7).
//
// Five implementations mirror the paper's optimization ladder (Fig. 7):
//   InitialPA   - quadrature loops over all basis functions (no sum
//                 factorization); the starting point.
//   SharedPA    - sum-factorized with per-element stack buffers (the CPU
//                 analogue of staging contractions in GPU shared memory).
//   OptimizedPA - sum-factorized with compile-time polynomial order
//                 (fixed-trip-count inner loops; the paper's explicit launch
//                 bounds), used for the scaling runs.
//   FusedPA     - gradient and divergence fused into one element pass,
//                 sharing gathers and geometry loads; peak DOF throughput.
//   FusedMF     - fused and matrix-free: geometry recomputed from element
//                 corners at every point; higher FLOP/s, lower throughput.
// All variants compute identical results to rounding error (tested).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fem/basis.hpp"
#include "fem/geometry.hpp"
#include "fem/h1_space.hpp"
#include "fem/l2_space.hpp"

namespace tsunami {

enum class KernelVariant { InitialPA, SharedPA, OptimizedPA, FusedPA, FusedMF };

[[nodiscard]] std::string to_string(KernelVariant v);
[[nodiscard]] const std::vector<KernelVariant>& all_kernel_variants();

/// Analytic cost model of one fused operator application (both blocks),
/// used by bench_kernel_throughput to report FLOP/s and arithmetic intensity
/// like Fig. 7 (FLOP and byte counts in the paper were "manually calculated").
struct KernelCosts {
  double flops = 0.0;  ///< floating-point ops per full apply
  double bytes = 0.0;  ///< bytes moved per full apply (ideal caching)
};

[[nodiscard]] KernelCosts estimate_kernel_costs(KernelVariant v,
                                                std::size_t order,
                                                std::size_t nelem);

/// The mixed-operator kernel engine.
class MixedOperator {
 public:
  MixedOperator(const H1Space& h1, const L2Space& l2, const PaGeometry& geom,
                const BasisTables& tables,
                KernelVariant variant = KernelVariant::FusedPA);

  /// out_u = sign_grad * B p_in        (overwritten)
  /// out_p = sign_div  * B^T u_in      (overwritten)
  /// Boundary terms (absorbing, free surface) are applied by the caller.
  void apply_blocks(std::span<const double> p_in, std::span<const double> u_in,
                    std::span<double> u_out, std::span<double> p_out,
                    double sign_grad, double sign_div) const;

  [[nodiscard]] KernelVariant variant() const { return variant_; }
  void set_variant(KernelVariant v) { variant_ = v; }

  [[nodiscard]] const H1Space& h1() const { return h1_; }
  [[nodiscard]] const L2Space& l2() const { return l2_; }

  /// Total state DOFs touched per apply (pressure + velocity), the "DOF" of
  /// the paper's GDOF/s throughput metric.
  [[nodiscard]] std::size_t throughput_dofs() const {
    return h1_.num_dofs() + l2_.num_dofs();
  }

 private:
  const H1Space& h1_;
  const L2Space& l2_;
  const PaGeometry& geom_;
  const BasisTables& tables_;
  KernelVariant variant_;

  // Element lists by 8-coloring (parity of element coords); scatter into the
  // shared pressure vector is race-free within one color.
  std::array<std::vector<std::size_t>, 8> colors_;

  // InitialPA reference-element tables: value/grad of each pressure basis
  // function at each volume quadrature point.
  // phi_grad_[ (pt * n1^3 + dof) * 3 + d ].
  std::vector<double> phi_grad_;

  void apply_initial(std::span<const double> p_in, std::span<const double> u_in,
                     std::span<double> u_out, std::span<double> p_out,
                     double sg, double sd) const;
  void apply_shared(std::span<const double> p_in, std::span<const double> u_in,
                    std::span<double> u_out, std::span<double> p_out,
                    double sg, double sd) const;
  template <int P>
  void apply_optimized(std::span<const double> p_in,
                       std::span<const double> u_in, std::span<double> u_out,
                       std::span<double> p_out, double sg, double sd,
                       bool fused, bool matrix_free) const;
};

}  // namespace tsunami
