#pragma once

// Element geometry: trilinear Jacobians and the precomputed partial-assembly
// factors. Partial assembly stores, per element and volume quadrature point,
// the combined factor  G_q = w_q * det(J_q) * J_q^{-T}  (9 doubles) plus
// w_q det(J_q) (1 double) — the asymptotically O(1)-per-DOF storage the paper
// highlights for MFEM's PA. The matrix-free (MF) variant stores only the 24
// corner coordinates per element and recomputes J on the fly (more FLOPs,
// less memory traffic — Fig. 7's trade-off).

#include <array>
#include <cstddef>
#include <vector>

#include "fem/basis.hpp"
#include "fem/h1_space.hpp"
#include "mesh/hex_mesh.hpp"

namespace tsunami {

/// 3x3 Jacobian of the trilinear map at reference point xi, from the 8
/// element corners (corner c at index cx + 2*cy + 4*cz). Row-major:
/// J[3*i + j] = d x_i / d xi_j.
[[nodiscard]] std::array<double, 9> trilinear_jacobian(
    const std::array<std::array<double, 3>, 8>& corners,
    const std::array<double, 3>& xi);

/// det of a row-major 3x3.
[[nodiscard]] double det3(const std::array<double, 9>& j);

/// adj(J)^T / ... : computes  out = det(J) * J^{-T}  (row-major 3x3).
[[nodiscard]] std::array<double, 9> det_times_inverse_transpose(
    const std::array<double, 9>& j);

/// Precomputed PA geometry for the volume kernels.
struct PaGeometry {
  std::size_t nelem = 0;
  std::size_t q = 0;    ///< quad points per dim
  std::size_t q3 = 0;   ///< points per element
  /// grad_factor[(e*q3 + pt)*9 + 3*i + j] = w_pt det(J) J^{-T}, row-major.
  std::vector<double> grad_factor;
  /// wdetj[e*q3 + pt] = w_pt det(J).
  std::vector<double> wdetj;
  /// corners[e*24 + 3*c + d]: corner coordinates for the MF kernel.
  std::vector<double> corners;

  [[nodiscard]] std::size_t pa_bytes() const {
    return (grad_factor.size() + wdetj.size()) * sizeof(double);
  }
  [[nodiscard]] std::size_t mf_bytes() const {
    return corners.size() * sizeof(double);
  }
};

/// Build the PA tables for all elements (pool-parallel over elements).
[[nodiscard]] PaGeometry build_pa_geometry(const HexMesh& mesh,
                                           const BasisTables& tables);

/// Diagonal boundary weights on H1 (pressure) nodes of one boundary kind:
/// entries w_a w_b |t1 x t2| accumulated over boundary faces — the lumped
/// boundary mass used for the free-surface term, the absorbing term, and the
/// seafloor source/parameter map. Returned dense over all H1 DOFs (zero off
/// the boundary).
[[nodiscard]] std::vector<double> boundary_mass_diagonal(
    const H1Space& space, BoundaryKind kind);

/// Diagonal (lumped) volume H1 mass: entries  w_abc det(J at GLL node)
/// accumulated over elements (GLL collocation; the paper's lumped mass).
[[nodiscard]] std::vector<double> h1_lumped_mass(const H1Space& space);

}  // namespace tsunami
