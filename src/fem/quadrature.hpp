#pragma once

// 1-D quadrature rules on the reference interval [-1, 1].
//
// The discretization follows the paper's spectral-element structure:
// pressure uses Gauss-Lobatto-Legendre (GLL) nodes (collocated quadrature =>
// diagonal "lumped" mass, as in the paper), velocity and all volume integrals
// use Gauss-Legendre (GL) points.

#include <cstddef>
#include <vector>

namespace tsunami {

struct QuadratureRule {
  std::vector<double> points;   ///< nodes in [-1, 1], ascending
  std::vector<double> weights;  ///< positive weights summing to 2
  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Gauss-Legendre rule with `n` points (exact for degree 2n-1).
[[nodiscard]] QuadratureRule gauss_legendre(std::size_t n);

/// Gauss-Lobatto-Legendre rule with `n` points, n >= 2 (exact for degree
/// 2n-3; includes the endpoints +-1).
[[nodiscard]] QuadratureRule gauss_lobatto(std::size_t n);

}  // namespace tsunami
