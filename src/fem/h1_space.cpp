#include "fem/h1_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsunami {

H1Space::H1Space(const HexMesh& mesh, const BasisTables& tables)
    : mesh_(mesh),
      tables_(tables),
      p_(tables.order),
      nx1_(mesh.nx() * tables.order + 1),
      ny1_(mesh.ny() * tables.order + 1),
      nz1_(mesh.nz() * tables.order + 1) {}

std::array<double, 3> H1Space::node_coords(std::size_t a, std::size_t b,
                                           std::size_t c) const {
  // Element and intra-element GLL offsets.
  const std::size_t ex = std::min(a / p_, mesh_.nx() - 1);
  const std::size_t ey = std::min(b / p_, mesh_.ny() - 1);
  const std::size_t ez = std::min(c / p_, mesh_.nz() - 1);
  const std::size_t la = a - ex * p_;
  const std::size_t lb = b - ey * p_;
  const std::size_t lc = c - ez * p_;

  // Reference coordinates of the GLL node inside the element.
  const double xi = tables_.gll.points[la];
  const double eta = tables_.gll.points[lb];
  const double zeta = tables_.gll.points[lc];

  // Trilinear geometry interpolation from the element corners.
  const auto corners =
      mesh_.element_vertices(mesh_.element_index(ex, ey, ez));
  std::array<double, 3> x{0.0, 0.0, 0.0};
  for (std::size_t cz = 0; cz < 2; ++cz)
    for (std::size_t cy = 0; cy < 2; ++cy)
      for (std::size_t cx = 0; cx < 2; ++cx) {
        const double shape = 0.5 * (cx ? 1.0 + xi : 1.0 - xi) * 0.5 *
                             (cy ? 1.0 + eta : 1.0 - eta) * 0.5 *
                             (cz ? 1.0 + zeta : 1.0 - zeta);
        const auto& v = corners[cx + 2 * cy + 4 * cz];
        for (int d = 0; d < 3; ++d) x[static_cast<std::size_t>(d)] += shape * v[static_cast<std::size_t>(d)];
      }
  return x;
}

namespace {

/// Build the sparse evaluation row for reference point (xi, eta, zeta) of
/// element (ex, ey, ez).
PointEval eval_row(const H1Space& space, const BasisTables& tables,
                   std::size_t ex, std::size_t ey, std::size_t ez, double xi,
                   double eta, double zeta) {
  const auto lx = lagrange_values(tables.gll.points, xi);
  const auto ly = lagrange_values(tables.gll.points, eta);
  const auto lz = lagrange_values(tables.gll.points, zeta);
  PointEval out;
  const std::size_t n1 = tables.n1;
  out.dofs.reserve(n1 * n1 * n1);
  out.weights.reserve(n1 * n1 * n1);
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a) {
        const double w = lx[a] * ly[b] * lz[c];
        if (std::abs(w) < 1e-14) continue;
        out.dofs.push_back(space.element_dof(ex, ey, ez, a, b, c));
        out.weights.push_back(w);
      }
  return out;
}

}  // namespace

PointEval H1Space::locate(double x, double y, double z) const {
  const double dx = mesh_.dx(), dy = mesh_.dy();
  const auto clamp_cell = [](double v, double h, std::size_t n) {
    const double cell = std::floor(v / h);
    return static_cast<std::size_t>(
        std::clamp(cell, 0.0, static_cast<double>(n - 1)));
  };
  const std::size_t ex = clamp_cell(x, dx, mesh_.nx());
  const std::size_t ey = clamp_cell(y, dy, mesh_.ny());
  const double xi = 2.0 * (x - static_cast<double>(ex) * dx) / dx - 1.0;
  const double eta = 2.0 * (y - static_cast<double>(ey) * dy) / dy - 1.0;

  // Vertical: columns are graded between the seafloor and z = 0; find the
  // layer whose [z_bot, z_top] brackets z, then invert the (linear in zeta)
  // trilinear map at fixed (xi, eta).
  for (std::size_t ez = 0; ez < mesh_.nz(); ++ez) {
    const auto corners =
        mesh_.element_vertices(mesh_.element_index(ex, ey, ez));
    auto z_at = [&](double zeta) {
      double zz = 0.0;
      for (std::size_t cz = 0; cz < 2; ++cz)
        for (std::size_t cy = 0; cy < 2; ++cy)
          for (std::size_t cx = 0; cx < 2; ++cx) {
            const double shape = 0.5 * (cx ? 1.0 + xi : 1.0 - xi) * 0.5 *
                                 (cy ? 1.0 + eta : 1.0 - eta) * 0.5 *
                                 (cz ? 1.0 + zeta : 1.0 - zeta);
            zz += shape * corners[cx + 2 * cy + 4 * cz][2];
          }
      return zz;
    };
    const double z_bot = z_at(-1.0), z_top = z_at(1.0);
    const bool last = (ez + 1 == mesh_.nz());
    if (z <= z_top + 1e-9 || last) {
      if (z < z_bot - 1e-9 && ez == 0)
        throw std::invalid_argument("H1Space::locate: point below seafloor");
      const double denom = z_top - z_bot;
      const double zeta =
          denom > 0 ? std::clamp(2.0 * (z - z_bot) / denom - 1.0, -1.0, 1.0)
                    : -1.0;
      return eval_row(*this, tables_, ex, ey, ez, xi, eta, zeta);
    }
  }
  throw std::logic_error("H1Space::locate: unreachable");
}

PointEval H1Space::locate_on_bottom(double x, double y) const {
  const double dx = mesh_.dx(), dy = mesh_.dy();
  const std::size_t ex = std::min(static_cast<std::size_t>(std::max(0.0, std::floor(x / dx))),
                                  mesh_.nx() - 1);
  const std::size_t ey = std::min(static_cast<std::size_t>(std::max(0.0, std::floor(y / dy))),
                                  mesh_.ny() - 1);
  const double xi = 2.0 * (x - static_cast<double>(ex) * dx) / dx - 1.0;
  const double eta = 2.0 * (y - static_cast<double>(ey) * dy) / dy - 1.0;
  return eval_row(*this, tables_, ex, ey, 0, xi, eta, -1.0);
}

PointEval H1Space::locate_on_surface(double x, double y) const {
  const double dx = mesh_.dx(), dy = mesh_.dy();
  const std::size_t ex = std::min(static_cast<std::size_t>(std::max(0.0, std::floor(x / dx))),
                                  mesh_.nx() - 1);
  const std::size_t ey = std::min(static_cast<std::size_t>(std::max(0.0, std::floor(y / dy))),
                                  mesh_.ny() - 1);
  const double xi = 2.0 * (x - static_cast<double>(ex) * dx) / dx - 1.0;
  const double eta = 2.0 * (y - static_cast<double>(ey) * dy) / dy - 1.0;
  return eval_row(*this, tables_, ex, ey, mesh_.nz() - 1, xi, eta, 1.0);
}

}  // namespace tsunami
