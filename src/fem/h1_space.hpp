#pragma once

// H1-conforming (continuous) scalar space of order p on the structured hex
// mesh — the pressure space. Because the mesh is logically structured, the
// global numbering is the tensor grid of GLL nodes: node (a, b, c) with
// a in [0, nx*p], b in [0, ny*p], c in [0, nz*p]; index a-fastest, c-slowest.
// The seafloor plane c = 0 therefore occupies the first Nx1*Ny1 entries of
// any pressure vector — this plane doubles as the parameter grid for the
// inverse problem.

#include <array>
#include <cstddef>
#include <vector>

#include "fem/basis.hpp"
#include "mesh/hex_mesh.hpp"

namespace tsunami {

/// Sparse point-evaluation functional: p(x0) = sum_k weight[k] * p[dof[k]].
struct PointEval {
  std::vector<std::size_t> dofs;
  std::vector<double> weights;
};

class H1Space {
 public:
  H1Space(const HexMesh& mesh, const BasisTables& tables);

  [[nodiscard]] std::size_t num_dofs() const { return nx1_ * ny1_ * nz1_; }
  [[nodiscard]] std::size_t nx1() const { return nx1_; }
  [[nodiscard]] std::size_t ny1() const { return ny1_; }
  [[nodiscard]] std::size_t nz1() const { return nz1_; }

  /// Global index of grid node (a, b, c).
  [[nodiscard]] std::size_t node_index(std::size_t a, std::size_t b,
                                       std::size_t c) const {
    return a + nx1_ * (b + ny1_ * c);
  }

  /// Global DOF of local node (la, lb, lc) of element (ex, ey, ez).
  [[nodiscard]] std::size_t element_dof(std::size_t ex, std::size_t ey,
                                        std::size_t ez, std::size_t la,
                                        std::size_t lb, std::size_t lc) const {
    return node_index(ex * p_ + la, ey * p_ + lb, ez * p_ + lc);
  }

  /// Physical coordinates of global node (a, b, c) on the deformed mesh.
  [[nodiscard]] std::array<double, 3> node_coords(std::size_t a, std::size_t b,
                                                  std::size_t c) const;

  /// Number of seafloor-plane nodes (== inverse-problem spatial parameter
  /// dimension Nm).
  [[nodiscard]] std::size_t num_bottom_nodes() const { return nx1_ * ny1_; }

  /// Pressure point evaluation at physical (x, y, z). The point must lie
  /// inside the mesh; z is located within the containing column.
  [[nodiscard]] PointEval locate(double x, double y, double z) const;

  /// Convenience: evaluation on the seafloor / sea surface below (x, y).
  [[nodiscard]] PointEval locate_on_bottom(double x, double y) const;
  [[nodiscard]] PointEval locate_on_surface(double x, double y) const;

  [[nodiscard]] const HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const BasisTables& tables() const { return tables_; }
  [[nodiscard]] std::size_t order() const { return p_; }

 private:
  const HexMesh& mesh_;
  const BasisTables& tables_;
  std::size_t p_;
  std::size_t nx1_, ny1_, nz1_;
};

}  // namespace tsunami
