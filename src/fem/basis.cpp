#include "fem/basis.hpp"

#include <stdexcept>

namespace tsunami {

std::vector<double> lagrange_values(const std::vector<double>& nodes,
                                    double x) {
  const std::size_t n = nodes.size();
  std::vector<double> vals(n, 1.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (b == a) continue;
      vals[a] *= (x - nodes[b]) / (nodes[a] - nodes[b]);
    }
  }
  return vals;
}

std::vector<double> lagrange_derivatives(const std::vector<double>& nodes,
                                         double x) {
  const std::size_t n = nodes.size();
  std::vector<double> der(n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    double sum = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      if (b == a) continue;
      double prod = 1.0 / (nodes[a] - nodes[b]);
      for (std::size_t c = 0; c < n; ++c) {
        if (c == a || c == b) continue;
        prod *= (x - nodes[c]) / (nodes[a] - nodes[c]);
      }
      sum += prod;
    }
    der[a] = sum;
  }
  return der;
}

BasisTables::BasisTables(std::size_t order_in)
    : order(order_in),
      n1(order_in + 1),
      q(order_in),
      gll(gauss_lobatto(order_in + 1)),
      gl(gauss_legendre(order_in)),
      interp(order_in, order_in + 1),
      deriv(order_in, order_in + 1),
      interp_gll(order_in + 1, order_in + 1) {
  if (order < 1) throw std::invalid_argument("BasisTables: order must be >= 1");
  for (std::size_t l = 0; l < q; ++l) {
    const auto vals = lagrange_values(gll.points, gl.points[l]);
    const auto ders = lagrange_derivatives(gll.points, gl.points[l]);
    for (std::size_t a = 0; a < n1; ++a) {
      interp(l, a) = vals[a];
      deriv(l, a) = ders[a];
    }
  }
  for (std::size_t l = 0; l < n1; ++l) {
    const auto vals = lagrange_values(gll.points, gll.points[l]);
    for (std::size_t a = 0; a < n1; ++a) interp_gll(l, a) = vals[a];
  }
}

}  // namespace tsunami
