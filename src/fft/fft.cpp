#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

constexpr double kPi = std::numbers::pi;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    rev[i] = r;
  }
  return rev;
}

std::vector<Complex> make_twiddles(std::size_t n) {
  std::vector<Complex> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return tw;
}

// Iterative Cooley-Tukey with precomputed tables, fused stage pairs
// ("radix-2^2"): after the bit-reversal permutation, stages (L, 2L) are
// processed together — each 4-point group makes one trip through memory
// instead of two, and the second-stage twiddle of the odd lane is -i times
// that of the even lane (exactly, by the quarter-turn identity), which
// replaces a table load + complex multiply with a swap/negate. `inverse`
// conjugates twiddles; the flag is loop-invariant, so the compiler
// unswitches the loops into branch-free forward/inverse specializations.
// Normalization is applied by the caller.
void radix2_core(std::span<Complex> a, const std::vector<std::size_t>& bitrev,
                 const std::vector<Complex>& twiddle, bool inverse) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  std::size_t stages = 0;
  while ((std::size_t{1} << stages) < n) ++stages;
  std::size_t len = 2;
  if (stages % 2) {
    // Odd stage count: one plain radix-2 stage (unit twiddles) first, so
    // the remaining stages pair up.
    for (std::size_t start = 0; start + 1 < n; start += 2) {
      const Complex u = a[start];
      const Complex v = a[start + 1];
      a[start] = u + v;
      a[start + 1] = u - v;
    }
    len = 4;
  }
  for (; len <= n; len <<= 2) {
    const std::size_t quarter = len >> 1;      // k range of the fused pair
    const std::size_t pair = len << 1;         // combined block size (2L)
    const std::size_t stride1 = n / len;       // first-stage twiddle stride
    const std::size_t stride2 = stride1 >> 1;  // second-stage twiddle stride
    for (std::size_t start = 0; start < n; start += pair) {
      for (std::size_t k = 0; k < quarter; ++k) {
        Complex w1 = twiddle[k * stride1];
        Complex w2 = twiddle[k * stride2];
        if (inverse) {
          w1 = std::conj(w1);
          w2 = std::conj(w2);
        }
        // Quarter-turn identity: tw[k + n/4] = -i tw[k] (conjugated: +i).
        const Complex w2o = inverse ? Complex(-w2.imag(), w2.real())
                                    : Complex(w2.imag(), -w2.real());
        Complex* p0 = &a[start + k];
        Complex* p1 = p0 + quarter;
        Complex* p2 = p0 + len;
        Complex* p3 = p2 + quarter;
        // Stage L on both halves of the 2L block...
        const Complex t1 = *p1 * w1;
        const Complex t3 = *p3 * w1;
        const Complex b0 = *p0 + t1;
        const Complex b1 = *p0 - t1;
        const Complex b2 = *p2 + t3;
        const Complex b3 = *p2 - t3;
        // ...then stage 2L across them, all still in registers.
        const Complex u2 = b2 * w2;
        const Complex u3 = b3 * w2o;
        *p0 = b0 + u2;
        *p2 = b0 - u2;
        *p1 = b1 + u3;
        *p3 = b1 - u3;
      }
    }
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t length) : n_(length), pow2_(is_pow2(length)) {
  if (n_ == 0) throw std::invalid_argument("FftPlan: zero length");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddle_ = make_twiddles(n_);
    return;
  }
  // Bluestein: x_k * chirp_k convolved with conj-chirp, on padded length m.
  m_ = next_pow2(2 * n_ - 1);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // exp(-i pi k^2 / n); reduce k^2 mod 2n to keep the angle accurate.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = -kPi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = Complex(std::cos(ang), std::sin(ang));
  }
  m_bitrev_ = make_bitrev(m_);
  m_twiddle_ = make_twiddles(m_);
  std::vector<Complex> b(m_, Complex(0.0, 0.0));
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m_ - k] = std::conj(chirp_[k]);
  }
  radix2_core(std::span<Complex>(b), m_bitrev_, m_twiddle_, false);
  chirp_fft_ = std::move(b);
}

void FftPlan::radix2(std::span<Complex> data, bool inverse) const {
  radix2_core(data, bitrev_, twiddle_, inverse);
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (auto& v : data) v *= inv;
  }
}

void FftPlan::bluestein(std::span<Complex> data, bool inverse,
                        std::span<Complex> scratch) const {
  // Inverse via conjugation: ifft(x) = conj(fft(conj(x))) / n.
  Complex* a = scratch.data();
  if (inverse) {
    for (std::size_t k = 0; k < n_; ++k)
      a[k] = std::conj(data[k]) * chirp_[k];
  } else {
    for (std::size_t k = 0; k < n_; ++k) a[k] = data[k] * chirp_[k];
  }
  std::fill(a + n_, a + m_, Complex(0.0, 0.0));
  radix2_core(std::span<Complex>(a, m_), m_bitrev_, m_twiddle_, false);
  for (std::size_t k = 0; k < m_; ++k) a[k] *= chirp_fft_[k];
  radix2_core(std::span<Complex>(a, m_), m_bitrev_, m_twiddle_, true);
  const double inv_m = 1.0 / static_cast<double>(m_);
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k)
      data[k] = std::conj(a[k] * inv_m * chirp_[k]) * inv_n;
  } else {
    for (std::size_t k = 0; k < n_; ++k) data[k] = a[k] * inv_m * chirp_[k];
  }
}

void FftPlan::execute(std::span<Complex> data, bool inverse,
                      std::span<Complex> scratch) const {
  if (data.size() != n_) throw std::invalid_argument("FftPlan: length mismatch");
  if (pow2_) {
    radix2(data, inverse);
    return;
  }
  if (scratch.size() < m_)
    throw std::invalid_argument("FftPlan: scratch too small");
  bluestein(data, inverse, scratch);
}

void FftPlan::forward(std::span<Complex> data) const {
  if (pow2_) {
    execute(data, false, {});
    return;
  }
  std::vector<Complex> scratch(m_);
  execute(data, false, std::span<Complex>(scratch));
}

void FftPlan::forward(std::span<Complex> data,
                      std::span<Complex> scratch) const {
  execute(data, false, scratch);
}

void FftPlan::inverse(std::span<Complex> data) const {
  if (pow2_) {
    execute(data, true, {});
    return;
  }
  std::vector<Complex> scratch(m_);
  execute(data, true, std::span<Complex>(scratch));
}

void FftPlan::inverse(std::span<Complex> data,
                      std::span<Complex> scratch) const {
  execute(data, true, scratch);
}

void FftPlan::batch_execute(std::span<Complex> data, std::size_t batch,
                            bool inverse) const {
  if (data.size() != n_ * batch)
    throw std::invalid_argument("FftPlan: batch size mismatch");
  Complex* p = data.data();
  const std::size_t scr = scratch_size();
  if (scr == 0) {
    parallel_for_min(batch, 2, [&](std::size_t b) {
      execute(std::span<Complex>(p + b * n_, n_), inverse, {});
    });
    return;
  }
  // One scratch slab per loop participant, reused across the whole batch —
  // the plan's tables are shared and read-only, so the slab is the only
  // per-participant state.
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads()),
                            std::max<std::size_t>(batch, 1));
  std::vector<Complex> scratch(nthreads * scr);
  parallel_for_slotted(batch, 2, [&](std::size_t b, std::size_t slot) {
    execute(std::span<Complex>(p + b * n_, n_), inverse,
            std::span<Complex>(scratch.data() + slot * scr, scr));
  });
}

void FftPlan::forward_batch(std::span<Complex> data, std::size_t batch) const {
  batch_execute(data, batch, false);
}

void FftPlan::inverse_batch(std::span<Complex> data, std::size_t batch) const {
  batch_execute(data, batch, true);
}

// ---------------------------------------------------------------------------
// Real-input transforms.
// ---------------------------------------------------------------------------

RealFftPlan::RealFftPlan(std::size_t length)
    : n_(length), half_((length == 0 || length % 2) ? 1 : length / 2) {
  if (n_ == 0 || n_ % 2)
    throw std::invalid_argument(
        "RealFftPlan: length must be even and nonzero (use fft_real_pair for "
        "odd lengths)");
  untangle_.resize(n_ / 2 + 1);
  for (std::size_t k = 0; k <= n_ / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n_);
    untangle_[k] = Complex(std::cos(ang), std::sin(ang));
  }
}

void RealFftPlan::forward(std::span<const double> x,
                          std::span<Complex> spectrum,
                          std::span<Complex> scratch) const {
  if (x.size() > n_)
    throw std::invalid_argument("RealFftPlan::forward: signal too long");
  forward_strided(x.data(), 1, x.size(), spectrum, scratch);
}

void RealFftPlan::forward_strided(const double* x, std::size_t stride,
                                  std::size_t nsamples,
                                  std::span<Complex> spectrum,
                                  std::span<Complex> scratch) const {
  if (spectrum.size() < spectrum_size())
    throw std::invalid_argument("RealFftPlan: buffer too small");
  // std::complex<double> is layout-compatible with double[2]: the AoS
  // spectrum is the split writer with interleave stride 2.
  auto* planes = reinterpret_cast<double*>(spectrum.data());
  forward_strided_split(x, stride, nsamples, planes, planes + 1, 2, scratch);
}

void RealFftPlan::forward_strided_split(const double* x, std::size_t xstride,
                                        std::size_t nsamples, double* re,
                                        double* im, std::size_t sstride,
                                        std::span<Complex> scratch) const {
  const std::size_t nh = n_ / 2;
  if (nsamples > n_)
    throw std::invalid_argument("RealFftPlan: too many samples");
  if (scratch.size() < scratch_size())
    throw std::invalid_argument("RealFftPlan: buffer too small");
  Complex* z = scratch.data();
  // Pack: z_k = x_{2k} + i x_{2k+1}, zero-padding past nsamples. The strided
  // gather is fused into the pack so channel slabs need no staging copy.
  const std::size_t full = nsamples / 2;  // pairs with both samples present
  for (std::size_t k = 0; k < full; ++k)
    z[k] = Complex(x[(2 * k) * xstride], x[(2 * k + 1) * xstride]);
  if (full < nh) {
    z[full] = (nsamples % 2) ? Complex(x[(2 * full) * xstride], 0.0)
                             : Complex(0.0, 0.0);
    std::fill(z + full + 1, z + nh, Complex(0.0, 0.0));
  }
  half_.forward(std::span<Complex>(z, nh),
                scratch.subspan(nh, half_.scratch_size()));
  // Untangle straight into the destination planes: with E/O the spectra of
  // the even/odd subsequences, X_k = E_k + w_k O_k, w_k = exp(-2 pi i k / n).
  // Bins k and nh-k share their inputs, so one traversal of the first half
  // emits both ends (no second sweep, no AoS staging).
  {
    // k = 0 and k = nh (Z_0 both times).
    const Complex z0 = z[0];
    re[0] = z0.real() + z0.imag();
    im[0] = 0.0;
    re[nh * sstride] = z0.real() - z0.imag();
    im[nh * sstride] = 0.0;
  }
  for (std::size_t k = 1; 2 * k <= nh; ++k) {
    const std::size_t kn = nh - k;
    const Complex zk = z[k];
    const Complex zkn = z[kn];
    // Pair (k, kn): E_k = conj(E_kn) etc., so both bins come from {zk, zkn}.
    const Complex e_k = 0.5 * (zk + std::conj(zkn));
    const Complex o_k = Complex(0.0, -0.5) * (zk - std::conj(zkn));
    const Complex xk = e_k + untangle_[k] * o_k;
    re[k * sstride] = xk.real();
    im[k * sstride] = xk.imag();
    if (kn != k) {
      const Complex e_kn = std::conj(e_k);
      const Complex o_kn = std::conj(o_k);
      const Complex xkn = e_kn + untangle_[kn] * o_kn;
      re[kn * sstride] = xkn.real();
      im[kn * sstride] = xkn.imag();
    }
  }
}

void RealFftPlan::inverse(std::span<const Complex> spectrum,
                          std::span<double> x,
                          std::span<Complex> scratch) const {
  if (x.size() > n_)
    throw std::invalid_argument("RealFftPlan::inverse: output too long");
  inverse_strided(spectrum, x.data(), 1, x.size(), scratch);
}

void RealFftPlan::inverse_strided(std::span<const Complex> spectrum, double* x,
                                  std::size_t stride, std::size_t nsamples,
                                  std::span<Complex> scratch) const {
  if (spectrum.size() < spectrum_size())
    throw std::invalid_argument("RealFftPlan: buffer too small");
  const auto* planes = reinterpret_cast<const double*>(spectrum.data());
  inverse_strided_split(planes, planes + 1, 2, x, stride, nsamples, scratch);
}

void RealFftPlan::inverse_strided_split(const double* re, const double* im,
                                        std::size_t sstride, double* x,
                                        std::size_t xstride,
                                        std::size_t nsamples,
                                        std::span<Complex> scratch) const {
  const std::size_t nh = n_ / 2;
  if (nsamples > n_)
    throw std::invalid_argument("RealFftPlan: too many samples");
  if (scratch.size() < scratch_size())
    throw std::invalid_argument("RealFftPlan: buffer too small");
  Complex* z = scratch.data();
  // Re-tangle: E_k = (X_k + conj(X_{N-k}))/2, w_k O_k = (X_k - conj(X_{N-k}))/2,
  // Z_k = E_k + i O_k (N = n/2); exact inverse of the forward untangle. Z is
  // conj-symmetric in pairs (Z_{N-k} = conj(E_k) + i conj(O_k)), so one
  // traversal of the first half fills both ends, reading the split planes
  // once.
  {
    // Bins 0 and N are structurally real (as documented): their stored
    // imaginary parts are ignored.
    const Complex a(re[0], 0.0);
    const Complex b(re[nh * sstride], 0.0);
    z[0] = 0.5 * (a + b) + Complex(0.0, 1.0) * (0.5 * (a - b));
  }
  for (std::size_t k = 1; 2 * k <= nh; ++k) {
    const std::size_t kn = nh - k;
    const Complex a(re[k * sstride], im[k * sstride]);
    const Complex b(re[kn * sstride], -im[kn * sstride]);
    const Complex e = 0.5 * (a + b);
    const Complex o = std::conj(untangle_[k]) * (0.5 * (a - b));
    z[k] = e + Complex(0.0, 1.0) * o;
    if (kn != k) z[kn] = std::conj(e) + Complex(0.0, 1.0) * std::conj(o);
  }
  half_.inverse(std::span<Complex>(z, nh),
                scratch.subspan(nh, half_.scratch_size()));
  // Unpack x_{2k} = Re z_k, x_{2k+1} = Im z_k; scatter with the caller's
  // stride, emitting only the requested time prefix.
  const std::size_t full = nsamples / 2;
  for (std::size_t k = 0; k < full; ++k) {
    x[(2 * k) * xstride] = z[k].real();
    x[(2 * k + 1) * xstride] = z[k].imag();
  }
  if (nsamples % 2) x[(2 * full) * xstride] = z[full].real();
}

void fft_real_pair(const FftPlan& plan, std::span<const double> a,
                   std::span<const double> b, std::span<Complex> ahat,
                   std::span<Complex> bhat, std::span<Complex> scratch) {
  const std::size_t n = plan.length();
  const std::size_t nspec = n / 2 + 1;
  if (a.size() != n || b.size() != n)
    throw std::invalid_argument("fft_real_pair: signal length mismatch");
  if (ahat.size() < nspec || bhat.size() < nspec ||
      scratch.size() < n + plan.scratch_size())
    throw std::invalid_argument("fft_real_pair: buffer too small");
  Complex* z = scratch.data();
  for (std::size_t j = 0; j < n; ++j) z[j] = Complex(a[j], b[j]);
  plan.forward(std::span<Complex>(z, n),
               scratch.subspan(n, plan.scratch_size()));
  // Split by conjugate symmetry: A_k = (Z_k + conj(Z_{n-k}))/2,
  // B_k = -i (Z_k - conj(Z_{n-k}))/2.
  for (std::size_t k = 0; k < nspec; ++k) {
    const Complex zk = z[k];
    const Complex znk = std::conj(z[(n - k) % n]);
    ahat[k] = 0.5 * (zk + znk);
    bhat[k] = Complex(0.0, -0.5) * (zk - znk);
  }
}

void ifft_real_pair(const FftPlan& plan, std::span<const Complex> ahat,
                    std::span<const Complex> bhat, std::span<double> a,
                    std::span<double> b, std::span<Complex> scratch) {
  const std::size_t n = plan.length();
  const std::size_t nspec = n / 2 + 1;
  if (a.size() != n || b.size() != n)
    throw std::invalid_argument("ifft_real_pair: signal length mismatch");
  if (ahat.size() < nspec || bhat.size() < nspec ||
      scratch.size() < n + plan.scratch_size())
    throw std::invalid_argument("ifft_real_pair: buffer too small");
  Complex* z = scratch.data();
  const Complex i_unit(0.0, 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex ak = k < nspec ? ahat[k] : std::conj(ahat[n - k]);
    const Complex bk = k < nspec ? bhat[k] : std::conj(bhat[n - k]);
    z[k] = ak + i_unit * bk;
  }
  plan.inverse(std::span<Complex>(z, n),
               scratch.subspan(n, plan.scratch_size()));
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = z[j].real();
    b[j] = z[j].imag();
  }
}

void fft(std::vector<Complex>& data) {
  FftPlan(data.size()).forward(std::span<Complex>(data));
}

void ifft(std::vector<Complex>& data) {
  FftPlan(data.size()).inverse(std::span<Complex>(data));
}

std::vector<Complex> dft_reference(std::span<const Complex> x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * kPi * static_cast<double>((j * k) % n) /
                         static_cast<double>(n);
      out[k] += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

std::vector<double> fft_convolve(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(out_len);
  std::vector<Complex> fa(m, Complex(0.0, 0.0)), fb(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  FftPlan plan(m);
  plan.forward(std::span<Complex>(fa));
  plan.forward(std::span<Complex>(fb));
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  plan.inverse(std::span<Complex>(fa));
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace tsunami
