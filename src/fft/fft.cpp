#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

constexpr double kPi = std::numbers::pi;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    rev[i] = r;
  }
  return rev;
}

std::vector<Complex> make_twiddles(std::size_t n) {
  std::vector<Complex> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return tw;
}

// Radix-2 in-place with precomputed tables. `inverse` conjugates twiddles;
// normalization is applied by the caller.
void radix2_core(std::span<Complex> a, const std::vector<std::size_t>& bitrev,
                 const std::vector<Complex>& twiddle, bool inverse) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = n / len;
    for (std::size_t start = 0; start < n; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = twiddle[k * stride];
        if (inverse) w = std::conj(w);
        const Complex u = a[start + k];
        const Complex v = a[start + k + half] * w;
        a[start + k] = u + v;
        a[start + k + half] = u - v;
      }
    }
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t length) : n_(length), pow2_(is_pow2(length)) {
  if (n_ == 0) throw std::invalid_argument("FftPlan: zero length");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddle_ = make_twiddles(n_);
    return;
  }
  // Bluestein: x_k * chirp_k convolved with conj-chirp, on padded length m.
  m_ = next_pow2(2 * n_ - 1);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // exp(-i pi k^2 / n); reduce k^2 mod 2n to keep the angle accurate.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = -kPi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = Complex(std::cos(ang), std::sin(ang));
  }
  m_bitrev_ = make_bitrev(m_);
  m_twiddle_ = make_twiddles(m_);
  std::vector<Complex> b(m_, Complex(0.0, 0.0));
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m_ - k] = std::conj(chirp_[k]);
  }
  radix2_core(std::span<Complex>(b), m_bitrev_, m_twiddle_, false);
  chirp_fft_ = std::move(b);
}

void FftPlan::radix2(std::span<Complex> data, bool inverse) const {
  radix2_core(data, bitrev_, twiddle_, inverse);
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (auto& v : data) v *= inv;
  }
}

void FftPlan::bluestein(std::span<Complex> data, bool inverse) const {
  // Inverse via conjugation: ifft(x) = conj(fft(conj(x))) / n.
  std::vector<Complex> a(m_, Complex(0.0, 0.0));
  if (inverse) {
    for (std::size_t k = 0; k < n_; ++k)
      a[k] = std::conj(data[k]) * chirp_[k];
  } else {
    for (std::size_t k = 0; k < n_; ++k) a[k] = data[k] * chirp_[k];
  }
  radix2_core(std::span<Complex>(a), m_bitrev_, m_twiddle_, false);
  for (std::size_t k = 0; k < m_; ++k) a[k] *= chirp_fft_[k];
  radix2_core(std::span<Complex>(a), m_bitrev_, m_twiddle_, true);
  const double inv_m = 1.0 / static_cast<double>(m_);
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k)
      data[k] = std::conj(a[k] * inv_m * chirp_[k]) * inv_n;
  } else {
    for (std::size_t k = 0; k < n_; ++k) data[k] = a[k] * inv_m * chirp_[k];
  }
}

void FftPlan::forward(std::span<Complex> data) const {
  if (data.size() != n_) throw std::invalid_argument("FftPlan: length mismatch");
  if (pow2_)
    radix2(data, false);
  else
    bluestein(data, false);
}

void FftPlan::inverse(std::span<Complex> data) const {
  if (data.size() != n_) throw std::invalid_argument("FftPlan: length mismatch");
  if (pow2_)
    radix2(data, true);
  else
    bluestein(data, true);
}

void FftPlan::forward_batch(std::span<Complex> data, std::size_t batch) const {
  if (data.size() != n_ * batch)
    throw std::invalid_argument("FftPlan: batch size mismatch");
  Complex* p = data.data();
  parallel_for_min(batch, 2, [&](std::size_t b) {
    forward(std::span<Complex>(p + b * n_, n_));
  });
}

void FftPlan::inverse_batch(std::span<Complex> data, std::size_t batch) const {
  if (data.size() != n_ * batch)
    throw std::invalid_argument("FftPlan: batch size mismatch");
  Complex* p = data.data();
  parallel_for_min(batch, 2, [&](std::size_t b) {
    inverse(std::span<Complex>(p + b * n_, n_));
  });
}

void fft(std::vector<Complex>& data) {
  FftPlan(data.size()).forward(std::span<Complex>(data));
}

void ifft(std::vector<Complex>& data) {
  FftPlan(data.size()).inverse(std::span<Complex>(data));
}

std::vector<Complex> dft_reference(std::span<const Complex> x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * kPi * static_cast<double>((j * k) % n) /
                         static_cast<double>(n);
      out[k] += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

std::vector<double> fft_convolve(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(out_len);
  std::vector<Complex> fa(m, Complex(0.0, 0.0)), fb(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  FftPlan plan(m);
  plan.forward(std::span<Complex>(fa));
  plan.forward(std::span<Complex>(fb));
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  plan.inverse(std::span<Complex>(fa));
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace tsunami
