#pragma once

// From-scratch FFT library (the {cu,roc}FFT stand-in for FFTMatvec).
//
// Provides complex forward/inverse transforms of arbitrary length:
//  - iterative radix-2 Cooley-Tukey for powers of two,
//  - Bluestein's chirp-z algorithm for everything else (so Toeplitz
//    embeddings never need size padding beyond 2*Nt),
// plus batched multi-signal transforms (OpenMP over the batch), which is the
// access pattern of the block-circulant matvec: many independent length-L
// transforms, one per spatial index.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tsunami {

using Complex = std::complex<double>;

/// Precomputed plan for complex transforms of a fixed length.
/// Immutable after construction; execute() is const and thread-safe, so one
/// plan can serve all OpenMP threads of a batch.
class FftPlan {
 public:
  explicit FftPlan(std::size_t length);

  [[nodiscard]] std::size_t length() const { return n_; }

  /// In-place forward DFT: X_k = sum_j x_j exp(-2 pi i j k / n).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT (includes the 1/n normalization).
  void inverse(std::span<Complex> data) const;

  /// Batched forward transform: `batch` contiguous signals of length n.
  void forward_batch(std::span<Complex> data, std::size_t batch) const;
  void inverse_batch(std::span<Complex> data, std::size_t batch) const;

 private:
  void radix2(std::span<Complex> data, bool inverse) const;
  void bluestein(std::span<Complex> data, bool inverse) const;

  std::size_t n_;
  bool pow2_;
  // Radix-2 tables.
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddle_;      // forward twiddles, n/2 entries
  // Bluestein tables (empty if pow2).
  std::size_t m_ = 0;                 // padded power-of-two length >= 2n-1
  std::vector<Complex> chirp_;        // exp(-i pi k^2 / n), k = 0..n-1
  std::vector<Complex> chirp_fft_;    // FFT of the padded conjugate chirp
  std::vector<std::size_t> m_bitrev_;
  std::vector<Complex> m_twiddle_;
};

/// One-shot convenience transforms (plan constructed internally).
void fft(std::vector<Complex>& data);
void ifft(std::vector<Complex>& data);

/// Naive O(n^2) DFT used as the test oracle.
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> x,
                                                 bool inverse = false);

/// Linear convolution of two real sequences via FFT (length a+b-1).
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b);

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

}  // namespace tsunami
