#pragma once

// From-scratch FFT library (the {cu,roc}FFT stand-in for FFTMatvec).
//
// Provides complex forward/inverse transforms of arbitrary length:
//  - iterative radix-2 Cooley-Tukey for powers of two,
//  - Bluestein's chirp-z algorithm for everything else (so Toeplitz
//    embeddings never need size padding beyond 2*Nt),
// plus batched multi-signal transforms (pool-parallel over the batch), the
// access pattern of the block-circulant matvec: many independent length-L
// transforms, one per spatial index.
//
// Real-input transforms: the block-Toeplitz matvec transforms purely real
// signals, whose spectra are conjugate-symmetric — a full complex FFT wastes
// half its flops and bandwidth on redundant bins. Two classic remedies are
// provided, both exact rearrangements (no approximation):
//  - RealFftPlan: one real signal of even length n through ONE complex FFT
//    of length n/2 (pack even samples into the real lane, odd samples into
//    the imaginary lane, then untangle with a twiddle pass) — the r2c/c2r
//    path used by the Toeplitz engine, ~2x cheaper than the complex plan.
//  - fft_real_pair / ifft_real_pair: TWO real signals of any length n
//    (including Bluestein lengths) through one complex FFT of length n,
//    split by conjugate symmetry.
//
// Zero-allocation execution: every transform has a span-scratch overload
// (scratch_size() complex elements, caller-owned), so batch drivers reuse
// one scratch slab per thread and the hot apply paths never touch the heap.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tsunami {

using Complex = std::complex<double>;

/// Precomputed plan for complex transforms of a fixed length.
/// Immutable after construction; execute() is const and thread-safe, so one
/// plan can serve all worker threads of a batch (each participant passing
/// its own scratch slab to the span-scratch overloads).
class FftPlan {
 public:
  explicit FftPlan(std::size_t length);

  [[nodiscard]] std::size_t length() const { return n_; }

  /// Complex scratch elements the span-scratch overloads need: 0 for
  /// power-of-two lengths (radix-2 is fully in-place), the padded chirp
  /// length m for Bluestein.
  [[nodiscard]] std::size_t scratch_size() const { return pow2_ ? 0 : m_; }

  /// In-place forward DFT: X_k = sum_j x_j exp(-2 pi i j k / n).
  void forward(std::span<Complex> data) const;
  void forward(std::span<Complex> data, std::span<Complex> scratch) const;

  /// In-place inverse DFT (includes the 1/n normalization).
  void inverse(std::span<Complex> data) const;
  void inverse(std::span<Complex> data, std::span<Complex> scratch) const;

  /// Batched forward transform: `batch` contiguous signals of length n.
  /// Per-thread scratch is managed internally (no per-signal temporaries).
  void forward_batch(std::span<Complex> data, std::size_t batch) const;
  void inverse_batch(std::span<Complex> data, std::size_t batch) const;

 private:
  void radix2(std::span<Complex> data, bool inverse) const;
  void bluestein(std::span<Complex> data, bool inverse,
                 std::span<Complex> scratch) const;
  void execute(std::span<Complex> data, bool inverse,
               std::span<Complex> scratch) const;
  void batch_execute(std::span<Complex> data, std::size_t batch,
                     bool inverse) const;

  std::size_t n_;
  bool pow2_;
  // Radix-2 tables.
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddle_;      // forward twiddles, n/2 entries
  // Bluestein tables (empty if pow2).
  std::size_t m_ = 0;                 // padded power-of-two length >= 2n-1
  std::vector<Complex> chirp_;        // exp(-i pi k^2 / n), k = 0..n-1
  std::vector<Complex> chirp_fft_;    // FFT of the padded conjugate chirp
  std::vector<std::size_t> m_bitrev_;
  std::vector<Complex> m_twiddle_;
};

/// Real-input transform plan of fixed EVEN length n via one complex FFT of
/// length n/2 (the packing trick). Produces/consumes the non-redundant half
/// spectrum of n/2 + 1 bins; the redundant upper bins are implied by
/// conjugate symmetry. Immutable after construction; both transforms are
/// const and thread-safe given per-thread scratch.
///
/// Strided entry points serve the Toeplitz engine directly: channel signals
/// live interleaved in time-major slabs, and the pack/unpack pass absorbs
/// the gather/scatter, so no staging copy of the signal is ever made.
class RealFftPlan {
 public:
  /// `length` must be even and nonzero (the Toeplitz circulant embedding is
  /// always a power of two >= 2, so this costs the engine nothing).
  explicit RealFftPlan(std::size_t length);

  [[nodiscard]] std::size_t length() const { return n_; }
  /// Number of retained spectrum bins: n/2 + 1.
  [[nodiscard]] std::size_t spectrum_size() const { return n_ / 2 + 1; }
  /// Complex scratch elements required by forward/inverse.
  [[nodiscard]] std::size_t scratch_size() const {
    return n_ / 2 + half_.scratch_size();
  }

  /// Half spectrum of the real signal x, zero-padded to length n if
  /// x.size() < n. `spectrum` receives spectrum_size() bins.
  void forward(std::span<const double> x, std::span<Complex> spectrum,
               std::span<Complex> scratch) const;

  /// As forward, reading x[t * stride] for t in [0, nsamples) (zero beyond).
  void forward_strided(const double* x, std::size_t stride,
                       std::size_t nsamples, std::span<Complex> spectrum,
                       std::span<Complex> scratch) const;

  /// Split-complex output: bin k lands at re[k * sstride] / im[k * sstride]
  /// (strides in doubles). The untangle pass writes the planes directly —
  /// no AoS spectrum staging between the FFT and a frequency-major slab.
  void forward_strided_split(const double* x, std::size_t xstride,
                             std::size_t nsamples, double* re, double* im,
                             std::size_t sstride,
                             std::span<Complex> scratch) const;

  /// Real signal from its half spectrum (conjugate symmetry assumed; the
  /// imaginary parts of bins 0 and n/2 are ignored as they are structurally
  /// zero). Writes the first x.size() <= n samples only.
  void inverse(std::span<const Complex> spectrum, std::span<double> x,
               std::span<Complex> scratch) const;

  /// As inverse, writing x[t * stride] for t in [0, nsamples).
  void inverse_strided(std::span<const Complex> spectrum, double* x,
                       std::size_t stride, std::size_t nsamples,
                       std::span<Complex> scratch) const;

  /// Split-complex input counterpart of forward_strided_split: the
  /// re-tangle pass reads the planes directly.
  void inverse_strided_split(const double* re, const double* im,
                             std::size_t sstride, double* x,
                             std::size_t xstride, std::size_t nsamples,
                             std::span<Complex> scratch) const;

 private:
  std::size_t n_;
  FftPlan half_;                   // complex plan of length n/2
  std::vector<Complex> untangle_;  // exp(-2 pi i k / n), k = 0..n/2
};

/// Half spectra (n/2 + 1 bins each) of TWO equal-length real signals via ONE
/// complex FFT of length n = plan.length() — any length, including Bluestein
/// lengths, which is what makes this the real-input path for odd/composite
/// sizes where the half-length packing does not apply. scratch needs
/// plan.length() + plan.scratch_size() complex elements.
void fft_real_pair(const FftPlan& plan, std::span<const double> a,
                   std::span<const double> b, std::span<Complex> ahat,
                   std::span<Complex> bhat, std::span<Complex> scratch);

/// Inverse of fft_real_pair: two real signals from their half spectra.
void ifft_real_pair(const FftPlan& plan, std::span<const Complex> ahat,
                    std::span<const Complex> bhat, std::span<double> a,
                    std::span<double> b, std::span<Complex> scratch);

/// One-shot convenience transforms (plan constructed internally).
void fft(std::vector<Complex>& data);
void ifft(std::vector<Complex>& data);

/// Naive O(n^2) DFT used as the test oracle.
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> x,
                                                 bool inverse = false);

/// Linear convolution of two real sequences via FFT (length a+b-1).
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b);

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

}  // namespace tsunami
