#pragma once

// Seeded random number generation. All stochastic components (noise, prior
// samples, randomized probing) draw from explicitly seeded streams so every
// test and experiment is reproducible run-to-run.

#include <cstdint>
#include <random>
#include <vector>

namespace tsunami {

/// Deterministic RNG wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00dULL) : engine_(seed) {}

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Uniform draw in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * unif_(engine_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Vector of iid standard normals.
  std::vector<double> normal_vector(std::size_t n);

  /// Vector of iid uniforms in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo = 0.0,
                                     double hi = 1.0);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> unif_{0.0, 1.0};
};

}  // namespace tsunami
