#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tsunami {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

TextTable& TextTable::cell(long value) { return cell(std::to_string(value)); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << v;
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (auto w : width) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns) {
  if (column_names.size() != columns.size())
    throw std::invalid_argument("write_csv: name/column count mismatch");
  std::size_t nrows = 0;
  for (const auto& col : columns) nrows = std::max(nrows, col.size());

  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  for (std::size_t c = 0; c < column_names.size(); ++c) {
    if (c) f << ',';
    f << column_names[c];
  }
  f << '\n';
  f << std::setprecision(17);
  for (std::size_t r = 0; r < nrows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) f << ',';
      if (r < columns[c].size()) f << columns[c][r];
    }
    f << '\n';
  }
}

std::string format_duration(double seconds) {
  std::ostringstream os;
  os << std::setprecision(3);
  const double abs = seconds < 0 ? -seconds : seconds;
  if (abs < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (abs < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (abs < 1.0) {
    os << seconds * 1e3 << " ms";
  } else if (abs < 120.0) {
    os << seconds << " s";
  } else if (abs < 7200.0) {
    os << seconds / 60.0 << " min";
  } else {
    os << seconds / 3600.0 << " h";
  }
  return os.str();
}

std::string format_bytes(double bytes) {
  std::ostringstream os;
  os << std::setprecision(3);
  if (bytes < 1024.0) {
    os << bytes << " B";
  } else if (bytes < 1024.0 * 1024.0) {
    os << bytes / 1024.0 << " KiB";
  } else if (bytes < 1024.0 * 1024.0 * 1024.0) {
    os << bytes / (1024.0 * 1024.0) << " MiB";
  } else {
    os << bytes / (1024.0 * 1024.0 * 1024.0) << " GiB";
  }
  return os.str();
}

}  // namespace tsunami
