#include "util/io.hpp"

#include <fstream>
#include <stdexcept>

namespace tsunami {

namespace {

constexpr std::uint64_t kMatrixMagic = 0x54534d4154524958ULL;  // "TSMATRIX"
constexpr std::uint64_t kVectorMagic = 0x545356454354'4f52ULL;
constexpr std::uint64_t kP2oMagic = 0x5453'50324f'4d4150ULL;

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_doubles(std::ofstream& f, const double* p, std::size_t n) {
  f.write(reinterpret_cast<const char*>(p),
          static_cast<std::streamsize>(n * sizeof(double)));
}

void read_doubles(std::ifstream& f, double* p, std::size_t n) {
  f.read(reinterpret_cast<char*>(p),
         static_cast<std::streamsize>(n * sizeof(double)));
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("io: cannot open for write: " + path);
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("io: cannot open for read: " + path);
  return f;
}

void expect_magic(std::ifstream& f, std::uint64_t magic,
                  const std::string& path) {
  if (read_u64(f) != magic)
    throw std::runtime_error("io: bad file signature: " + path);
}

}  // namespace

void save_matrix(const std::string& path, const Matrix& m) {
  auto f = open_out(path);
  write_u64(f, kMatrixMagic);
  write_u64(f, m.rows());
  write_u64(f, m.cols());
  write_doubles(f, m.data(), m.size());
  if (!f) throw std::runtime_error("io: write failed: " + path);
}

Matrix load_matrix(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kMatrixMagic, path);
  const std::uint64_t rows = read_u64(f);
  const std::uint64_t cols = read_u64(f);
  Matrix m(rows, cols);
  read_doubles(f, m.data(), m.size());
  if (!f) throw std::runtime_error("io: truncated matrix file: " + path);
  return m;
}

void save_vector(const std::string& path, const std::vector<double>& v) {
  auto f = open_out(path);
  write_u64(f, kVectorMagic);
  write_u64(f, v.size());
  write_doubles(f, v.data(), v.size());
  if (!f) throw std::runtime_error("io: write failed: " + path);
}

std::vector<double> load_vector(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kVectorMagic, path);
  std::vector<double> v(read_u64(f));
  read_doubles(f, v.data(), v.size());
  if (!f) throw std::runtime_error("io: truncated vector file: " + path);
  return v;
}

void save_p2o(const std::string& path, const P2oArchive& archive) {
  if (archive.blocks.size() != archive.nrows * archive.ncols * archive.nt)
    throw std::invalid_argument("save_p2o: block array size mismatch");
  auto f = open_out(path);
  write_u64(f, kP2oMagic);
  write_u64(f, archive.nrows);
  write_u64(f, archive.ncols);
  write_u64(f, archive.nt);
  write_doubles(f, archive.blocks.data(), archive.blocks.size());
  if (!f) throw std::runtime_error("io: write failed: " + path);
}

P2oArchive load_p2o(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kP2oMagic, path);
  P2oArchive a;
  a.nrows = read_u64(f);
  a.ncols = read_u64(f);
  a.nt = read_u64(f);
  a.blocks.resize(a.nrows * a.ncols * a.nt);
  read_doubles(f, a.blocks.data(), a.blocks.size());
  if (!f) throw std::runtime_error("io: truncated p2o file: " + path);
  return a;
}

}  // namespace tsunami
