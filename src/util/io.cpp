#include "util/io.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace tsunami {

namespace {

constexpr std::uint64_t kMatrixMagic = 0x54534d4154524958ULL;  // "TSMATRIX"
constexpr std::uint64_t kVectorMagic = 0x545356454354'4f52ULL;
constexpr std::uint64_t kP2oMagic = 0x5453'50324f'4d4150ULL;

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_doubles(std::ofstream& f, const double* p, std::size_t n) {
  f.write(reinterpret_cast<const char*>(p),
          static_cast<std::streamsize>(n * sizeof(double)));
}

void read_doubles(std::ifstream& f, double* p, std::size_t n) {
  f.read(reinterpret_cast<char*>(p),
         static_cast<std::streamsize>(n * sizeof(double)));
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("io: cannot open for write: " + path);
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("io: cannot open for read: " + path);
  return f;
}

/// Size of an opened file in bytes (for validating header dimensions before
/// any allocation).
std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("io: cannot stat: " + path);
  return static_cast<std::uint64_t>(size);
}

void expect_magic(std::ifstream& f, std::uint64_t magic,
                  const std::string& path) {
  if (read_u64(f) != magic)
    throw std::runtime_error("io: bad file signature: " + path);
}

/// The header claims `count` doubles of payload after `header_bytes` of
/// header. Reject headers whose claim disagrees with the file on disk —
/// before the claim sizes any allocation.
void expect_payload(std::uint64_t count, std::uint64_t header_bytes,
                    const std::string& path) {
  const std::uint64_t payload =
      checked_mul_u64(count, sizeof(double), "io: payload size");
  const std::uint64_t actual = file_bytes(path);
  if (actual < header_bytes || actual - header_bytes != payload)
    throw std::runtime_error(
        "io: header dimensions disagree with file size (truncated or corrupt "
        "header): " +
        path);
  if (count > std::numeric_limits<std::size_t>::max() / sizeof(double))
    throw std::runtime_error("io: payload too large for this platform: " +
                             path);
}

/// Flush, then check: a buffered write that only fails at stream teardown
/// would otherwise be reported as success, leaving a silently corrupt
/// artifact on disk.
void finish_write(std::ofstream& f, const std::string& path) {
  f.flush();
  if (!f) throw std::runtime_error("io: write failed: " + path);
}

}  // namespace

std::uint64_t checked_mul_u64(std::uint64_t a, std::uint64_t b,
                              const char* what) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b)
    throw std::runtime_error(std::string(what) +
                             ": integer overflow in size computation");
  return a * b;
}

void save_matrix(const std::string& path, const Matrix& m) {
  auto f = open_out(path);
  write_u64(f, kMatrixMagic);
  write_u64(f, m.rows());
  write_u64(f, m.cols());
  write_doubles(f, m.data(), m.size());
  finish_write(f, path);
}

Matrix load_matrix(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kMatrixMagic, path);
  const std::uint64_t rows = read_u64(f);
  const std::uint64_t cols = read_u64(f);
  if (!f) throw std::runtime_error("io: truncated matrix header: " + path);
  const std::uint64_t count = checked_mul_u64(rows, cols, "io: matrix dims");
  expect_payload(count, 3 * sizeof(std::uint64_t), path);
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  read_doubles(f, m.data(), m.size());
  if (!f) throw std::runtime_error("io: truncated matrix file: " + path);
  return m;
}

void save_vector(const std::string& path, const std::vector<double>& v) {
  auto f = open_out(path);
  write_u64(f, kVectorMagic);
  write_u64(f, v.size());
  write_doubles(f, v.data(), v.size());
  finish_write(f, path);
}

std::vector<double> load_vector(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kVectorMagic, path);
  const std::uint64_t count = read_u64(f);
  if (!f) throw std::runtime_error("io: truncated vector header: " + path);
  expect_payload(count, 2 * sizeof(std::uint64_t), path);
  std::vector<double> v(static_cast<std::size_t>(count));
  read_doubles(f, v.data(), v.size());
  if (!f) throw std::runtime_error("io: truncated vector file: " + path);
  return v;
}

void save_p2o(const std::string& path, const P2oArchive& archive) {
  const std::uint64_t count = checked_mul_u64(
      checked_mul_u64(archive.nrows, archive.ncols, "save_p2o: dims"),
      archive.nt, "save_p2o: dims");
  if (archive.blocks.size() != count)
    throw std::invalid_argument("save_p2o: block array size mismatch");
  auto f = open_out(path);
  write_u64(f, kP2oMagic);
  write_u64(f, archive.nrows);
  write_u64(f, archive.ncols);
  write_u64(f, archive.nt);
  write_doubles(f, archive.blocks.data(), archive.blocks.size());
  finish_write(f, path);
}

P2oArchive load_p2o(const std::string& path) {
  auto f = open_in(path);
  expect_magic(f, kP2oMagic, path);
  P2oArchive a;
  a.nrows = read_u64(f);
  a.ncols = read_u64(f);
  a.nt = read_u64(f);
  if (!f) throw std::runtime_error("io: truncated p2o header: " + path);
  const std::uint64_t count = checked_mul_u64(
      checked_mul_u64(a.nrows, a.ncols, "load_p2o: dims"), a.nt,
      "load_p2o: dims");
  expect_payload(count, 4 * sizeof(std::uint64_t), path);
  a.blocks.resize(static_cast<std::size_t>(count));
  read_doubles(f, a.blocks.data(), a.blocks.size());
  if (!f) throw std::runtime_error("io: truncated p2o file: " + path);
  return a;
}

}  // namespace tsunami
