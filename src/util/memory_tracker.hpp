#pragma once

// Byte-accounting for the paper's §VII-B memory-optimization study.
//
// The paper instruments host/device memory usage per component and reports a
// 5.33x footprint reduction from storage optimizations (recomputing geometry
// factors, fusing permutations, reusing RK4 temporaries, ...). We reproduce
// the accounting: every major allocation registers its logical size under a
// component name, and bench_memory reports bytes/DOF per assembly variant.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tsunami {

/// Explicit (opt-in) memory ledger. Components report logical allocation
/// sizes; the ledger aggregates by category.
class MemoryTracker {
 public:
  void add(const std::string& category, std::size_t bytes);
  void release(const std::string& category, std::size_t bytes);

  [[nodiscard]] std::size_t bytes(const std::string& category) const;
  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }
  [[nodiscard]] const std::vector<std::string>& categories() const {
    return order_;
  }
  void clear();

 private:
  std::map<std::string, std::size_t> bytes_;
  std::vector<std::string> order_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace tsunami
