#include "util/memory_tracker.hpp"

#include <algorithm>

namespace tsunami {

void MemoryTracker::add(const std::string& category, std::size_t bytes) {
  auto it = bytes_.find(category);
  if (it == bytes_.end()) {
    order_.push_back(category);
    it = bytes_.emplace(category, 0).first;
  }
  it->second += bytes;
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryTracker::release(const std::string& category, std::size_t bytes) {
  auto it = bytes_.find(category);
  if (it == bytes_.end()) return;
  const std::size_t drop = std::min(it->second, bytes);
  it->second -= drop;
  current_ -= drop;
}

std::size_t MemoryTracker::bytes(const std::string& category) const {
  auto it = bytes_.find(category);
  return it == bytes_.end() ? 0 : it->second;
}

std::size_t MemoryTracker::total_bytes() const { return current_; }

void MemoryTracker::clear() {
  bytes_.clear();
  order_.clear();
  current_ = 0;
  peak_ = 0;
}

}  // namespace tsunami
