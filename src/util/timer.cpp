#include "util/timer.hpp"

namespace tsunami {

TimerRegistry::TimerRegistry(TimerRegistry&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  entries_ = std::move(other.entries_);
  order_ = std::move(other.order_);
}

TimerRegistry& TimerRegistry::operator=(TimerRegistry&& other) noexcept {
  if (this == &other) return *this;
  const std::scoped_lock lock(mutex_, other.mutex_);
  entries_ = std::move(other.entries_);
  order_ = std::move(other.order_);
  return *this;
}

void TimerRegistry::add(const std::string& name, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    order_.push_back(name);
    it = entries_.emplace(name, Entry{}).first;
  }
  it->second.total += seconds;
  it->second.count += 1;
}

double TimerRegistry::total(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.total;
}

long TimerRegistry::count(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

double TimerRegistry::mean(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.count == 0) return 0.0;
  return it->second.total / static_cast<double>(it->second.count);
}

std::vector<std::string> TimerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

double TimerRegistry::grand_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (const auto& [_, e] : entries_) sum += e.total;
  return sum;
}

void TimerRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
}

}  // namespace tsunami
