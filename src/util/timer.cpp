#include "util/timer.hpp"

namespace tsunami {

void TimerRegistry::add(const std::string& name, double seconds) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    order_.push_back(name);
    it = entries_.emplace(name, Entry{}).first;
  }
  it->second.total += seconds;
  it->second.count += 1;
}

double TimerRegistry::total(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.total;
}

long TimerRegistry::count(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

double TimerRegistry::mean(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.count == 0) return 0.0;
  return it->second.total / static_cast<double>(it->second.count);
}

double TimerRegistry::grand_total() const {
  double sum = 0.0;
  for (const auto& [_, e] : entries_) sum += e.total;
  return sum;
}

void TimerRegistry::clear() {
  entries_.clear();
  order_.clear();
}

}  // namespace tsunami
