#pragma once

// Wall-clock timers and a hierarchical timer registry.
//
// Reproduces the measurement discipline of the paper's Table I / Table III:
// named phases ("Initialization", "Setup", "Adjoint p2o", "I/O", ...) are
// accumulated across repeated invocations and reported as a table. The paper
// measures wall time with POSIX clocks after device sync + MPI_Barrier; the
// CPU analogue here is steady_clock around thread-pool joins.

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tsunami {

/// Simple monotonic stopwatch (seconds, double precision).
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time and invocation counts under string keys.
///
/// Thread-safe: every entry point takes one uncontended mutex, so concurrent
/// event sessions (src/service/) can record into a shared registry without
/// corrupting it. The paper's barrier-then-measure discipline still applies
/// to *interpretation* — samples recorded from inside a parallel region
/// measure that thread's wall time, not the region's — but recording itself
/// is now safe from any thread. Single-threaded overhead is one
/// uncontended lock per add (~20 ns), negligible next to the >=µs phases
/// being timed.
class TimerRegistry {
 public:
  TimerRegistry() = default;

  // Movable (DigitalTwin is moved by value through warm-start factories);
  // the mutex itself is not moved, only the accumulated samples.
  TimerRegistry(TimerRegistry&& other) noexcept;
  TimerRegistry& operator=(TimerRegistry&& other) noexcept;
  TimerRegistry(const TimerRegistry&) = delete;
  TimerRegistry& operator=(const TimerRegistry&) = delete;

  /// Add `seconds` to the accumulator for `name` and bump its count.
  void add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never recorded).
  [[nodiscard]] double total(const std::string& name) const;

  /// Number of samples recorded for `name`.
  [[nodiscard]] long count(const std::string& name) const;

  /// Mean seconds per sample for `name` (0 if never recorded).
  [[nodiscard]] double mean(const std::string& name) const;

  /// All timer names in insertion order. Returns a snapshot by value: a
  /// reference into the registry could be invalidated by a concurrent add.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Sum of all accumulated times.
  [[nodiscard]] double grand_total() const;

  void clear();

 private:
  struct Entry {
    double total = 0.0;
    long count = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

/// RAII scope timer: records elapsed time into a registry on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { registry_.add(name_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace tsunami
