#pragma once

// Plain-text / CSV table writers used by the benchmark harness to print
// paper-style tables (Table I, II, III) and figure series (Figs. 4-7).

#include <iosfwd>
#include <string>
#include <vector>

namespace tsunami {

/// Column-aligned text table with a header row, printed like the paper's
/// tables. Cells are strings; numeric helpers format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Start a new row. Subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(const std::string& value);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(long value);

  /// Render with column alignment and a rule under the header.
  [[nodiscard]] std::string str() const;

  /// Render as CSV (no alignment padding).
  [[nodiscard]] std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write a set of named columns as a CSV file (figure series artifacts).
void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

/// Format seconds in a human-friendly unit (ns/us/ms/s/min/h), mirroring the
/// mixed units in the paper's Table III ("52 m", "24 ms", "0.2 s").
[[nodiscard]] std::string format_duration(double seconds);

/// Format a byte count as B/KiB/MiB/GiB.
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace tsunami
