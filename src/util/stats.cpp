#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsunami {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("percentile: q outside [0, 100]");
  if (sorted.empty()) return 0.0;
  const double pos =
      q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

LatencySummary summarize_latencies(std::vector<double> sample) {
  LatencySummary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  double sum = 0.0;
  for (double v : sample) sum += v;
  s.mean = sum / static_cast<double>(sample.size());
  s.max = sample.back();
  s.p50 = percentile_sorted(sample, 50.0);
  s.p95 = percentile_sorted(sample, 95.0);
  s.p99 = percentile_sorted(sample, 99.0);
  return s;
}

}  // namespace tsunami
