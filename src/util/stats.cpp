#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsunami {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("percentile: q outside [0, 100]");
  if (sorted.empty()) return 0.0;
  const double pos =
      q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {

/// Interpolated percentile by selection: nth_element places the lo-rank
/// order statistic (O(n) expected, vs O(n log n) for a full sort); the hi
/// neighbor is the minimum of the suffix nth_element left above it.
double percentile_select(std::vector<double>& v, double q) {
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = v.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(v.begin(), lo_it, v.end());
  const double vlo = *lo_it;
  if (frac == 0.0 || lo + 1 >= v.size()) return vlo;
  const double vhi = *std::min_element(lo_it + 1, v.end());
  return vlo + frac * (vhi - vlo);
}

}  // namespace

double percentile(std::span<const double> sample, double q) {
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("percentile: q outside [0, 100]");
  if (sample.empty()) return 0.0;
  std::vector<double> v(sample.begin(), sample.end());
  return percentile_select(v, q);
}

LatencySummary summarize_latencies(std::vector<double> sample) {
  LatencySummary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0.0;
  double max = sample.front();
  for (double v : sample) {
    sum += v;
    max = std::max(max, v);
  }
  s.mean = sum / static_cast<double>(sample.size());
  s.max = max;
  s.p50 = percentile_select(sample, 50.0);
  s.p95 = percentile_select(sample, 95.0);
  s.p99 = percentile_select(sample, 99.0);
  return s;
}

}  // namespace tsunami
