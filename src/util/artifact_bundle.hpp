#pragma once

// The versioned artifact bundle: ONE file carrying everything the online
// phase needs.
//
// The paper's deployment story (SecVIII) ships the Phase 1-3 products — p2o
// block columns, the Cholesky factor of the data-space Hessian K, the
// data-to-QoI map Q, Gamma_post(q) — from the HPC system to a warning center
// that runs Phase 4 with no HPC at all. util/io.hpp gives each product its
// own file; this module packs them into a single self-describing container
// so the hand-off is one artifact, not a directory convention:
//
//   u64 magic "TSBUNDLE"            ─┐
//   u64 format version               │ header
//   u64 producer config fingerprint ─┘
//   u64 section count
//   per section:
//     u64 name length, name bytes
//     u64 ndims, u64 dims[ndims]
//     f64 payload[prod(dims)]
//   u64 FNV-1a checksum over every preceding byte
//
// The loader reads the whole file into memory first (bundles are small by
// design — that is the point of the offline/online split), verifies the
// trailing checksum before trusting anything, and bounds-checks every read
// against the buffer, with checked multiplication on all dimension products.
// A corrupt, truncated, or malicious bundle raises std::runtime_error with
// the path; it can never over-allocate or over-read.
//
// The container is deliberately generic (named sections of dimensioned
// double arrays). What goes in the sections — and the TwinConfig fingerprint
// stored in the header — is the digital twin's business
// (DigitalTwin::save_offline / load_offline in core/digital_twin.hpp).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace tsunami {

/// Bump when the on-disk layout changes; loaders reject other versions.
inline constexpr std::uint64_t kBundleFormatVersion = 1;

/// FNV-1a 64-bit hash, used for both the whole-file checksum and the
/// TwinConfig fingerprint. `h` chains calls: fnv1a(b, nb, fnv1a(a, na)).
[[nodiscard]] std::uint64_t fnv1a(
    const void* data, std::size_t nbytes,
    std::uint64_t h = 0xcbf29ce484222325ULL);

/// One named, dimensioned payload inside a bundle.
struct BundleSection {
  std::string name;
  std::vector<std::uint64_t> dims;
  std::vector<double> data;  ///< size == product of dims
};

/// In-memory bundle: an ordered set of named sections plus the producer's
/// config fingerprint. Value type; build with set_*, persist with
/// save_bundle, restore with load_bundle.
class ArtifactBundle {
 public:
  std::uint64_t fingerprint = 0;  ///< producer TwinConfig fingerprint

  /// Add (or replace) a section. Throws std::invalid_argument if the
  /// product of `dims` does not equal data.size().
  void set(std::string name, std::vector<std::uint64_t> dims,
           std::vector<double> data);
  void set_matrix(const std::string& name, const Matrix& m);
  void set_vector(const std::string& name, std::span<const double> v);

  [[nodiscard]] bool has(const std::string& name) const;
  /// Throws std::runtime_error naming the missing section.
  [[nodiscard]] const BundleSection& at(const std::string& name) const;
  /// Typed access with shape checks (2-D / 1-D respectively).
  [[nodiscard]] Matrix matrix(const std::string& name) const;
  [[nodiscard]] std::vector<double> vector(const std::string& name) const;

  [[nodiscard]] const std::vector<BundleSection>& sections() const {
    return sections_;
  }
  /// Payload bytes across all sections (the shippable size).
  [[nodiscard]] std::uint64_t payload_bytes() const;

 private:
  std::vector<BundleSection> sections_;  ///< insertion order preserved
};

/// Serialize with trailing checksum. Throws std::runtime_error on I/O
/// failure (flushes before the final check — a buffered write failure is
/// never reported as success).
void save_bundle(const std::string& path, const ArtifactBundle& bundle);

/// Load and fully validate (magic, version, checksum, per-section bounds).
[[nodiscard]] ArtifactBundle load_bundle(const std::string& path);

}  // namespace tsunami
