#pragma once

// Order statistics shared by every latency report in the codebase.
//
// The paper quotes tail behavior, not just means ("the online phase must
// keep up with data arrival"), and a warning service is judged by its p99
// push latency: one slow assimilation during a real event is a late alert.
// This header is the single definition of "percentile" so the service
// telemetry (src/service/), the scenario-bank sweep reports (src/core/),
// and the benchmarks all agree on the estimator.

#include <cstddef>
#include <span>
#include <vector>

namespace tsunami {

/// The q-th percentile (q in [0, 100]) of an ascending-sorted sample, using
/// linear interpolation between closest ranks (the numpy default). Returns
/// 0 for an empty sample; throws std::invalid_argument for q outside
/// [0, 100]. The input must already be sorted — this overload trusts its
/// caller and costs O(1).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// As above for an unsorted sample: copies, then selects the bracketing
/// ranks with std::nth_element — O(n) expected, no full sort.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// The five numbers every latency table in this repo prints. Aggregated
/// once from a sample via `summarize_latencies`.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fills a LatencySummary from `sample` (consumed as scratch). Percentiles
/// come from per-quantile std::nth_element selection — O(n) expected each,
/// replacing the old full sort — and agree exactly with the sorted
/// interpolating estimator (asserted in tests/test_util.cpp).
[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> sample);

}  // namespace tsunami
