#include "util/rng.hpp"

namespace tsunami {

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

}  // namespace tsunami
