#pragma once

// Binary serialization of the offline-phase artifacts.
//
// The paper's deployment story (SecVIII) separates WHERE things are
// computed: Phases 1-3 run once on an HPC system and their products — the
// p2o/p2q block columns, the Cholesky factor of K, the data-to-QoI operator
// Q — are small enough to ship to a warning center that runs Phase 4 with
// no HPC at all. This module is that shipping format: a simple
// magic-tagged, dimension-checked binary container (host-endian; the
// warning center and the HPC system share architecture in deployment).

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace tsunami {

/// a * b with overflow detection. Header dimensions come straight off disk,
/// so every size computation on them must refuse to wrap: a wrapped product
/// silently undersizes the destination buffer and turns a corrupt header
/// into a heap overflow. Throws std::runtime_error naming `what`.
[[nodiscard]] std::uint64_t checked_mul_u64(std::uint64_t a, std::uint64_t b,
                                            const char* what);

/// Write/read a dense matrix with shape header. Loads validate the header
/// dimensions against the actual file size before allocating, so a corrupt
/// or truncated header raises std::runtime_error (with the path) instead of
/// a multi-GB allocation or a heap overflow. Writers flush before their
/// final stream check so buffered write failures cannot be reported as
/// success. Throws std::runtime_error on I/O failure or signature mismatch.
void save_matrix(const std::string& path, const Matrix& m);
[[nodiscard]] Matrix load_matrix(const std::string& path);

/// Write/read a raw vector with length header.
void save_vector(const std::string& path, const std::vector<double>& v);
[[nodiscard]] std::vector<double> load_vector(const std::string& path);

/// The block Toeplitz first block column (Phase 1 product): dims + blocks.
struct P2oArchive {
  std::uint64_t nrows = 0;  ///< Nd (or Nq)
  std::uint64_t ncols = 0;  ///< Nm
  std::uint64_t nt = 0;     ///< Nt
  std::vector<double> blocks;
};

void save_p2o(const std::string& path, const P2oArchive& archive);
[[nodiscard]] P2oArchive load_p2o(const std::string& path);

}  // namespace tsunami
