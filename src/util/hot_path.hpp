#pragma once

// TSUNAMI_HOT_PATH: the annotation half of the hot-path discipline contract
// (docs/ARCHITECTURE.md "Correctness tooling").
//
// A function marked TSUNAMI_HOT_PATH is part of the steady-state real-time
// surface — the per-tick push/apply/publish code whose latency claims the
// paper (and the serving layer's p99 numbers) rest on. The marker is not
// documentation: tools/lint/lint.py scans every annotated function body and
// rejects
//   * heap allocation (`new`, `malloc`/`calloc`/`realloc`) and
//     container-growth calls (`push_back`, `emplace_back`, `resize`,
//     `reserve`, `insert`, `emplace`, `assign`, `append`) — rule
//     hot-path-alloc;
//   * blocking synchronization (`std::mutex`, `lock_guard`, `unique_lock`,
//     `scoped_lock`, `condition_variable`) — rule hot-path-lock.
// Deliberate exceptions (a workspace buffer that grows once to its
// high-water mark and is then reused forever) carry an inline
// `// lint: allow(<rule>) <why>` with the rationale, so every exemption is
// visible at the call site and in review.
//
// The runtime half of the contract lives in src/debug/sentinels.hpp:
// TSUNAMI_CHECKS builds interpose operator new/delete and
// pthread_mutex_lock, and tests/test_debug.cpp arms ScopedNoAlloc /
// ScopedNoLock around these same paths to prove the discipline dynamically.
//
// Annotating a new hot path:
//   1. Put TSUNAMI_HOT_PATH before the return type on the declaration AND
//      the definition (the linter scans whichever carries the body).
//   2. Run `python3 tools/lint/lint.py` and fix or justify what it flags.
//   3. Add a ScopedNoAlloc/ScopedNoLock test in tests/test_debug.cpp if the
//      path has a steady-state zero-allocation or no-lock claim.
//
// The attribute itself also nudges the optimizer (hot-section placement);
// it never changes semantics.

#if defined(__GNUC__) || defined(__clang__)
#define TSUNAMI_HOT_PATH [[gnu::hot]]
#else
#define TSUNAMI_HOT_PATH
#endif
