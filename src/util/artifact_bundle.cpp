#include "util/artifact_bundle.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/io.hpp"

namespace tsunami {

namespace {

constexpr std::uint64_t kBundleMagic = 0x5453'42554e444c45ULL;  // "TSBUNDLE"
constexpr std::uint64_t kMaxSectionNameBytes = 4096;
constexpr std::uint64_t kMaxSectionDims = 16;

void append_bytes(std::vector<char>& buf, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  buf.insert(buf.end(), c, c + n);
}

void append_u64(std::vector<char>& buf, std::uint64_t v) {
  append_bytes(buf, &v, sizeof(v));
}

/// Bounds-checked cursor over the in-memory file image. Every read is
/// validated against the buffer end, so a lying header can at worst raise a
/// clean error — never an over-read.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size, const std::string& path)
      : p_(data), end_(data + size), path_(path) {}

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    take(&v, sizeof(v), what);
    return v;
  }

  void doubles(double* out, std::uint64_t count, const char* what) {
    const std::uint64_t bytes =
        checked_mul_u64(count, sizeof(double), "artifact_bundle: payload");
    take(out, bytes, what);
  }

  std::string string(std::uint64_t nbytes, const char* what) {
    std::string s(static_cast<std::size_t>(nbytes), '\0');
    take(s.data(), nbytes, what);
    return s;
  }

  [[nodiscard]] std::uint64_t remaining() const {
    return static_cast<std::uint64_t>(end_ - p_);
  }

 private:
  void take(void* out, std::uint64_t nbytes, const char* what) {
    if (remaining() < nbytes)
      throw std::runtime_error("artifact_bundle: truncated " +
                               std::string(what) + ": " + path_);
    std::memcpy(out, p_, static_cast<std::size_t>(nbytes));
    p_ += nbytes;
  }

  const char* p_;
  const char* end_;
  const std::string& path_;
};

std::uint64_t dims_product(const std::vector<std::uint64_t>& dims,
                           const char* what) {
  std::uint64_t n = 1;
  for (const std::uint64_t d : dims) n = checked_mul_u64(n, d, what);
  return n;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t nbytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ArtifactBundle::set(std::string name, std::vector<std::uint64_t> dims,
                         std::vector<double> data) {
  if (dims_product(dims, "ArtifactBundle::set") != data.size())
    throw std::invalid_argument("ArtifactBundle::set: dims/data mismatch for " +
                                name);
  for (auto& s : sections_) {
    if (s.name == name) {
      s.dims = std::move(dims);
      s.data = std::move(data);
      return;
    }
  }
  sections_.push_back({std::move(name), std::move(dims), std::move(data)});
}

void ArtifactBundle::set_matrix(const std::string& name, const Matrix& m) {
  set(name, {m.rows(), m.cols()},
      std::vector<double>(m.data(), m.data() + m.size()));
}

void ArtifactBundle::set_vector(const std::string& name,
                                std::span<const double> v) {
  set(name, {v.size()}, std::vector<double>(v.begin(), v.end()));
}

bool ArtifactBundle::has(const std::string& name) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const BundleSection& s) { return s.name == name; });
}

const BundleSection& ArtifactBundle::at(const std::string& name) const {
  for (const auto& s : sections_)
    if (s.name == name) return s;
  throw std::runtime_error("artifact_bundle: missing section '" + name + "'");
}

Matrix ArtifactBundle::matrix(const std::string& name) const {
  const BundleSection& s = at(name);
  if (s.dims.size() != 2)
    throw std::runtime_error("artifact_bundle: section '" + name +
                             "' is not a matrix");
  Matrix m(static_cast<std::size_t>(s.dims[0]),
           static_cast<std::size_t>(s.dims[1]));
  std::copy(s.data.begin(), s.data.end(), m.data());
  return m;
}

std::vector<double> ArtifactBundle::vector(const std::string& name) const {
  const BundleSection& s = at(name);
  if (s.dims.size() != 1)
    throw std::runtime_error("artifact_bundle: section '" + name +
                             "' is not a vector");
  return s.data;
}

std::uint64_t ArtifactBundle::payload_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : sections_)
    n += static_cast<std::uint64_t>(s.data.size()) * sizeof(double);
  return n;
}

void save_bundle(const std::string& path, const ArtifactBundle& bundle) {
  std::vector<char> buf;
  append_u64(buf, kBundleMagic);
  append_u64(buf, kBundleFormatVersion);
  append_u64(buf, bundle.fingerprint);
  append_u64(buf, bundle.sections().size());
  for (const BundleSection& s : bundle.sections()) {
    if (s.name.size() > kMaxSectionNameBytes)
      throw std::invalid_argument("save_bundle: section name too long");
    append_u64(buf, s.name.size());
    append_bytes(buf, s.name.data(), s.name.size());
    append_u64(buf, s.dims.size());
    for (const std::uint64_t d : s.dims) append_u64(buf, d);
    append_bytes(buf, s.data.data(), s.data.size() * sizeof(double));
  }
  append_u64(buf, fnv1a(buf.data(), buf.size()));

  std::ofstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("save_bundle: cannot open for write: " + path);
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  f.flush();
  if (!f) throw std::runtime_error("save_bundle: write failed: " + path);
}

ArtifactBundle load_bundle(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("load_bundle: cannot open for read: " + path);
  std::error_code ec;
  const auto fsize = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("load_bundle: cannot stat: " + path);
  // Header (4 u64) + trailing checksum is the smallest legal bundle.
  if (fsize < 5 * sizeof(std::uint64_t))
    throw std::runtime_error("load_bundle: file too small to be a bundle: " +
                             path);
  if (fsize > std::numeric_limits<std::size_t>::max())
    throw std::runtime_error("load_bundle: file too large: " + path);
  std::vector<char> buf(static_cast<std::size_t>(fsize));
  f.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f || static_cast<std::uint64_t>(f.gcount()) != fsize)
    throw std::runtime_error("load_bundle: short read: " + path);

  // Verify the trailing checksum before trusting any field.
  const std::size_t body = buf.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, buf.data() + body, sizeof(stored));
  if (fnv1a(buf.data(), body) != stored)
    throw std::runtime_error("load_bundle: checksum mismatch (corrupt file): " +
                             path);

  Cursor c(buf.data(), body, path);
  if (c.u64("magic") != kBundleMagic)
    throw std::runtime_error("load_bundle: bad file signature: " + path);
  const std::uint64_t version = c.u64("version");
  if (version != kBundleFormatVersion)
    throw std::runtime_error("load_bundle: unsupported format version " +
                             std::to_string(version) + ": " + path);
  ArtifactBundle bundle;
  bundle.fingerprint = c.u64("fingerprint");
  const std::uint64_t nsections = c.u64("section count");
  for (std::uint64_t i = 0; i < nsections; ++i) {
    const std::uint64_t name_len = c.u64("section name length");
    if (name_len > kMaxSectionNameBytes)
      throw std::runtime_error("load_bundle: section name too long: " + path);
    std::string name = c.string(name_len, "section name");
    const std::uint64_t ndims = c.u64("section rank");
    if (ndims > kMaxSectionDims)
      throw std::runtime_error("load_bundle: section rank too large: " + path);
    std::vector<std::uint64_t> dims(static_cast<std::size_t>(ndims));
    for (auto& d : dims) d = c.u64("section dims");
    const std::uint64_t count = dims_product(dims, "load_bundle: dims");
    // The remaining-bytes check below also caps the allocation: count can
    // never exceed what the file actually holds.
    if (checked_mul_u64(count, sizeof(double), "load_bundle: payload") >
        c.remaining())
      throw std::runtime_error(
          "load_bundle: section '" + name +
          "' dimensions exceed the file payload (corrupt header): " + path);
    std::vector<double> data(static_cast<std::size_t>(count));
    c.doubles(data.data(), count, "section payload");
    bundle.set(std::move(name), std::move(dims), std::move(data));
  }
  if (c.remaining() != 0)
    throw std::runtime_error("load_bundle: trailing bytes after sections: " +
                             path);
  return bundle;
}

}  // namespace tsunami
