#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace tsunami {
namespace {

constexpr std::size_t kMaxThreads = 512;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// First positive integer found in the named environment variables, or 0.
std::size_t env_threads(std::initializer_list<const char*> names) {
  for (const char* name : names) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') continue;
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

struct Job {
  std::function<void()> fn;
};

/// Chase-Lev work-stealing deque of Job*. The owner pushes and pops at the
/// bottom; thieves race a CAS on the top. The racy loads/stores use seq_cst
/// atomics rather than the textbook standalone fences: standalone
/// atomic_thread_fence is both easy to get subtly wrong and invisible to
/// TSan (which would then report false races through the deque), while
/// seq_cst operations on top_/bottom_ are strictly stronger and fully
/// modeled. The deque is far from the bottleneck — steals are rare under
/// chunked loops — so the stronger ordering costs nothing measurable.
class StealDeque {
 public:
  StealDeque() : array_(new Slots(kInitialCapacity)) {}

  ~StealDeque() {
    // mo: relaxed — destruction implies every other thread is done with the
    // deque; no concurrent access remains to order against.
    delete array_.load(std::memory_order_relaxed);
    for (Slots* retired : retired_) delete retired;
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.
  void push(Job* job) {
    // mo: relaxed on owner-private bottom_/array_ reads (only this thread
    // writes them); acquire on top_ to see thieves' claims before sizing;
    // release on the array_ store publishes the grown slots to thieves.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Slots* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) {
      // Full: publish a doubled array. The old array is retired, not freed —
      // a concurrent thief may still hold a pointer to it.
      Slots* grown = a->grow(t, b);
      retired_.push_back(a);
      // mo: release — pairs with steal()'s acquire load of array_ so the
      // copied slots are visible before a thief dereferences them.
      array_.store(grown, std::memory_order_release);
      a = grown;
    }
    a->put(b, job);
    // mo: seq_cst — deque-protocol publication of the new bottom; see the
    // class comment for why the protocol runs entirely on seq_cst.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Null when empty (or when a thief won the last element).
  Job* pop() {
    // mo: relaxed for the owner-private reads; seq_cst for the reservation
    // store + top load — the store/load pair must be globally ordered
    // against steal()'s top/bottom pair (the classic Chase-Lev SC fence,
    // expressed as seq_cst ops per the class comment).
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Slots* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: restore bottom.
      // mo: relaxed — owner-private undo; only this thread reads bottom_
      // without the protocol's seq_cst accesses in between.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Job* job = a->get(b);
    if (t == b) {
      // Last element: race thieves for it via the top CAS.
      // mo: seq_cst CAS decides the race for the final element; relaxed on
      // failure (losing carries no data) and on the bottom_ restore, which
      // only this owner reads.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        job = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  /// Any thread. Null on empty or lost race.
  Job* steal() {
    // mo: seq_cst top/bottom reads + claiming CAS — the thief half of the
    // protocol ordering described in pop(); acquire on array_ pairs with
    // push()'s release so the grown slots are visible before get(). CAS
    // failure is relaxed: a lost race returns null, no data crosses.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Slots* a = array_.load(std::memory_order_acquire);
    Job* job = a->get(t);
    // mo: seq_cst claim CAS / relaxed failure — see the comment above.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return job;
  }

  // mo: seq_cst — reuses the protocol order for a racy emptiness hint;
  // weaker orders would be fine but the uniform rule keeps TSan's model
  // identical to shipped code (class comment).
  [[nodiscard]] bool looks_empty() const {
    return bottom_.load(std::memory_order_seq_cst) <=
           top_.load(std::memory_order_seq_cst);
  }

  /// Any thread; a racy snapshot suitable for metrics only.
  // mo: seq_cst — same uniform-protocol-order rationale as looks_empty().
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  struct Slots {
    explicit Slots(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          entries(new std::atomic<Job*>[cap]) {}

    // mo: relaxed — slot contents are ordered by the top_/bottom_ protocol,
    // not by the slot accesses themselves (Chase-Lev invariant: a claimed
    // index is never concurrently rewritten).
    [[nodiscard]] Job* get(std::int64_t i) const {
      return entries[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, Job* job) {
      entries[static_cast<std::size_t>(i) & mask].store(
          job, std::memory_order_relaxed);
    }
    [[nodiscard]] Slots* grow(std::int64_t t, std::int64_t b) const {
      auto* next = new Slots(capacity * 2);
      for (std::int64_t i = t; i < b; ++i) next->put(i, get(i));
      return next;
    }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Job*>[]> entries;
  };

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Slots*> array_;
  std::vector<Slots*> retired_;  // owner-only; freed at destruction
};

/// State of one in-flight run() loop, shared by the caller and its helper
/// jobs. Items are claimed via `next`; completion is `done == nitems`.
struct LoopState {
  LoopState(std::size_t n, void (*f)(void*, std::size_t, std::size_t),
            void* c)
      : nitems(n), fn(f), ctx(c) {}

  const std::size_t nitems;
  void (*const fn)(void*, std::size_t, std::size_t);
  void* const ctx;

  std::atomic<std::size_t> next{0};   ///< next unclaimed item
  std::atomic<std::size_t> done{0};   ///< completed (or skipped) items
  std::atomic<std::size_t> slots{0};  ///< dense participant-slot allocator
  std::atomic<bool> failed{false};    ///< set once an item threw

  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  ///< first exception, guarded by mutex
};

/// Claim-and-execute until the loop runs dry. Never blocks, so it is safe to
/// call from arbitrarily nested loops.
void work_on(LoopState& state) {
  // mo: relaxed — slot/item tickets only need atomicity of the increment
  // (each participant gets a unique value); nothing is published through
  // them. failed is a best-effort skip hint: its definitive read happens
  // after the done_cv wait, which the mutex orders.
  const std::size_t slot = state.slots.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    const std::size_t item = state.next.fetch_add(1, std::memory_order_relaxed);
    if (item >= state.nitems) return;
    if (!state.failed.load(std::memory_order_relaxed)) {
      try {
        state.fn(state.ctx, item, slot);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
        // mo: relaxed — best-effort skip hint (see function comment); the
        // authoritative error handoff is state.error under the mutex.
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
    // mo: acq_rel — the completing increment: release publishes this item's
    // writes; the acquire half (paired with run_items' acquire read of done)
    // makes every item's effects visible to the loop's caller.
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.nitems) {
      const std::lock_guard<std::mutex> lock(state.mutex);
      state.done_cv.notify_all();
    }
  }
}

struct Worker;

struct WorkerTls {
  void* pool = nullptr;  // the ThreadPool::Impl this thread belongs to
  Worker* worker = nullptr;
};

thread_local WorkerTls tls_worker;

struct Worker {
  StealDeque deque;
  std::size_t index = 0;
  // Per-worker observability counters; relaxed atomics so worker_stats()
  // can read them while the worker runs.
  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::int64_t> busy_ns{0};
  std::thread thread;
};

}  // namespace

struct ThreadPool::Impl {
  std::size_t threads = 1;
  std::vector<std::unique_ptr<Worker>> workers;

  std::mutex inject_mutex;
  std::deque<Job*> inject;

  // Sleep protocol: `signals` is bumped (and the cv notified) on every job
  // submission; a worker snapshots it before its final empty re-check, then
  // waits for it to change. A submission between re-check and wait flips the
  // predicate, so wakeups cannot be lost.
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  std::atomic<std::uint64_t> signals{0};
  std::atomic<bool> stop{false};

  // submit()-job accounting for wait_idle().
  std::atomic<std::int64_t> inflight{0};
  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  std::atomic<std::uint64_t> steals{0};

  /// Epoch of the current worker set (reset on spawn) for utilization.
  std::chrono::steady_clock::time_point spawned_at =
      std::chrono::steady_clock::now();

  void push_job(Job* job) {
    // mo: relaxed — inflight is a pure count; the paired acq_rel decrement
    // in execute() orders the idle handoff.
    inflight.fetch_add(1, std::memory_order_relaxed);
    if (tls_worker.pool == this && tls_worker.worker != nullptr) {
      tls_worker.worker->deque.push(job);
    } else {
      const std::lock_guard<std::mutex> lock(inject_mutex);
      inject.push_back(job);
    }
    // mo: release — the signal bump pairs with the workers' acquire load so
    // a woken worker sees the job enqueued above before re-checking queues.
    signals.fetch_add(1, std::memory_order_release);
    wake_cv.notify_one();
  }

  Job* pop_injected() {
    const std::lock_guard<std::mutex> lock(inject_mutex);
    if (inject.empty()) return nullptr;
    Job* job = inject.front();
    inject.pop_front();
    return job;
  }

  Job* find_work(Worker& me) {
    if (Job* job = me.deque.pop()) return job;
    if (Job* job = pop_injected()) return job;
    for (const auto& victim : workers) {
      if (victim.get() == &me) continue;
      if (Job* job = victim->deque.steal()) {
        // mo: relaxed — observability counters, read racily by stats calls.
        steals.fetch_add(1, std::memory_order_relaxed);
        me.steals.fetch_add(1, std::memory_order_relaxed);
        TRACE_INSTANT("pool", "steal");
        return job;
      }
    }
    return nullptr;
  }

  void execute(Worker& me, Job* job) {
    {
      TRACE_SCOPE("pool", "job");
      const auto t0 = std::chrono::steady_clock::now();
      job->fn();
      // mo: relaxed — per-worker observability counters (see Worker).
      me.busy_ns.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count(),
          std::memory_order_relaxed);
      me.jobs.fetch_add(1, std::memory_order_relaxed);
    }
    delete job;
    // mo: acq_rel — the last decrement releases this job's effects and
    // acquires every earlier job's, so wait_idle()'s acquire read of 0
    // hands the caller a fully published state.
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(idle_mutex);
      idle_cv.notify_all();
    }
  }

  void worker_main(Worker& me) {
    tls_worker = {this, &me};
    obs::set_thread_name("pool-worker-" + std::to_string(me.index));
    for (;;) {
      if (Job* job = find_work(me)) {
        execute(me, job);
        continue;
      }
      // mo: acquire — pairs with push_job's release bump: if a submission
      // landed before this snapshot, the re-check below must find its job
      // (that is the no-lost-wakeup argument in the Impl comment).
      const std::uint64_t seen = signals.load(std::memory_order_acquire);
      if (Job* job = find_work(me)) {
        execute(me, job);
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex);
      // mo: relaxed — reads under wake_mutex, which both writers also take
      // (join_all for stop, the cv wakeup protocol for signals); the mutex
      // provides the ordering.
      wake_cv.wait(lock, [&] {
        return stop.load(std::memory_order_relaxed) ||
               signals.load(std::memory_order_relaxed) != seen;
      });
      if (stop.load(std::memory_order_relaxed)) return;
    }
  }

  void spawn(std::size_t n) {
    // mo: relaxed — no worker threads exist yet; std::thread construction
    // below synchronizes-with each worker's start.
    stop.store(false, std::memory_order_relaxed);
    threads = n;
    workers.clear();
    workers.reserve(n);
    spawned_at = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<Worker>());
      workers.back()->index = i;
    }
    // Spawn only after the vector is fully built: workers scan each other's
    // deques when stealing.
    for (auto& w : workers) {
      Worker* self = w.get();
      w->thread = std::thread([this, self] { worker_main(*self); });
    }
  }

  void join_all() {
    {
      const std::lock_guard<std::mutex> lock(wake_mutex);
      // mo: relaxed — written under wake_mutex, read by workers inside the
      // cv wait (also under wake_mutex); the mutex orders it.
      stop.store(true, std::memory_order_relaxed);
    }
    wake_cv.notify_all();
    for (auto& w : workers) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  /// Moves jobs stranded in worker deques back to the injection queue
  /// (workers are joined, so owner/thief roles are moot).
  void salvage_deques() {
    for (auto& w : workers) {
      while (Job* job = w->deque.steal()) {
        const std::lock_guard<std::mutex> lock(inject_mutex);
        inject.push_back(job);
      }
    }
  }
};

std::size_t loop_chunks(std::size_t n) {
  static const std::size_t kGrid = std::max<std::size_t>(
      64, 4 * hardware_threads());
  return std::min(n, kGrid);
}

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  std::size_t n = threads == 0 ? default_threads() : threads;
  n = std::clamp<std::size_t>(n, 1, kMaxThreads);
  impl_->spawn(n);
}

ThreadPool::~ThreadPool() {
  impl_->join_all();
  impl_->salvage_deques();
  // Unexecuted jobs (there normally are none: owners wait for their work)
  // are dropped, not run — destruction is not a drain point.
  while (Job* job = impl_->pop_injected()) {
    delete job;
    // mo: relaxed — workers are joined; this is single-threaded cleanup.
    impl_->inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::default_threads() {
  const std::size_t env =
      env_threads({"TSUNAMI_NUM_THREADS", "OMP_NUM_THREADS"});
  const std::size_t n = env != 0 ? env : hardware_threads();
  return std::clamp<std::size_t>(n, 1, kMaxThreads);
}

std::size_t ThreadPool::num_threads() const { return impl_->threads; }

void ThreadPool::submit(std::function<void()> job) {
  impl_->push_job(new Job{std::move(job)});
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->idle_mutex);
  // mo: acquire — pairs with execute()'s acq_rel decrement: reading 0 means
  // every completed job's writes are visible to the caller.
  impl_->idle_cv.wait(lock, [&] {
    return impl_->inflight.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::resize(std::size_t threads) {
  std::size_t n = threads == 0 ? default_threads() : threads;
  n = std::clamp<std::size_t>(n, 1, kMaxThreads);
  if (n == impl_->threads) return;
  impl_->join_all();
  impl_->salvage_deques();
  impl_->spawn(n);
  // Re-signal in case jobs were salvaged into the injection queue.
  // mo: release — same pairing as push_job's signal bump.
  impl_->signals.fetch_add(1, std::memory_order_release);
  impl_->wake_cv.notify_all();
}

std::size_t ThreadPool::steal_count() const {
  // mo: relaxed — racy observability read of a statistics counter.
  return impl_->steals.load(std::memory_order_relaxed);
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(impl_->workers.size());
  for (const auto& w : impl_->workers) {
    WorkerStats s;
    // mo: relaxed — racy snapshot of per-worker statistics while the
    // workers keep running; staleness is fine by contract.
    s.jobs = w->jobs.load(std::memory_order_relaxed);
    s.steals = w->steals.load(std::memory_order_relaxed);
    s.busy_seconds =
        static_cast<double>(w->busy_ns.load(std::memory_order_relaxed)) / 1e9;
    s.queue_depth = w->deque.size();
    out.push_back(s);
  }
  return out;
}

double ThreadPool::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       impl_->spawned_at)
      .count();
}

void ThreadPool::run_items(std::size_t nitems, ItemFn fn, void* ctx) {
  if (nitems == 0) return;
  // Serial fast path: same item grid, same order, zero scheduling. Loops are
  // worker-count-invariant precisely because this path and the parallel path
  // execute the identical item decomposition.
  if (impl_->threads <= 1 || nitems == 1) {
    for (std::size_t i = 0; i < nitems; ++i) fn(ctx, i, 0);
    return;
  }

  TRACE_SCOPE("pool", "parallel_loop");
  auto state = std::make_shared<LoopState>(nitems, fn, ctx);
  // The caller participates, so at most min(threads, nitems) slots are ever
  // allocated — scratch sized num_threads()-wide is always sufficient.
  const std::size_t helpers =
      std::min(impl_->threads - 1, nitems - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    impl_->push_job(new Job{[state] { work_on(*state); }});
  }
  work_on(*state);

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    // mo: acquire — pairs with work_on's acq_rel done increments: seeing
    // done == nitems makes every item's writes visible to this caller.
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == nitems;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace tsunami
