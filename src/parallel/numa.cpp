#include "parallel/numa.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "parallel/parallel_for.hpp"

namespace tsunami {
namespace {

constexpr std::size_t kAlign = 64;  // cache line; also divides the page size

double* numa_alloc(std::size_t n) {
  if (n == 0) return nullptr;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t bytes = ((n * sizeof(double) + kAlign - 1) / kAlign) * kAlign;
  void* p = std::aligned_alloc(kAlign, bytes);
  if (p == nullptr) throw std::bad_alloc();
  return static_cast<double*>(p);
}

}  // namespace

NumaArray::NumaArray(std::size_t n) : data_(numa_alloc(n)), size_(n) {
  // First touch from the pool workers: pages land near their consumers.
  parallel_for_ranges(size_, [&](std::size_t begin, std::size_t end) {
    std::fill(data_ + begin, data_ + end, 0.0);
  });
}

NumaArray::NumaArray(const NumaArray& other)
    : data_(numa_alloc(other.size_)), size_(other.size_) {
  parallel_for_ranges(size_, [&](std::size_t begin, std::size_t end) {
    std::copy(other.data_ + begin, other.data_ + end, data_ + begin);
  });
}

NumaArray::NumaArray(NumaArray&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

NumaArray& NumaArray::operator=(const NumaArray& other) {
  if (this != &other) *this = NumaArray(other);
  return *this;
}

NumaArray& NumaArray::operator=(NumaArray&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

NumaArray::~NumaArray() { std::free(data_); }

}  // namespace tsunami
