#pragma once

// Simulated distributed runtime for the scaling studies (Fig. 5 / Table II).
//
// This container has no interconnect, so full-machine runs are reproduced by
// substitution (see DESIGN.md): the domain decomposition and halo-exchange
// pack/unpack are REAL code paths executed through in-memory buffers, while
// the wire itself is an alpha-beta (latency-bandwidth) model parameterized by
// published characteristics of the paper's three systems (El Capitan, Alps,
// Perlmutter). Per-rank kernel time uses the saturation-throughput curve that
// bench_kernel_throughput measures for real kernels (Fig. 7's shape):
// smaller per-rank problems run below peak throughput, which is exactly what
// degrades strong scaling in the paper's Fig. 5.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "parallel/partition.hpp"

namespace tsunami {

/// Per-system performance parameters used by the scaling model.
struct MachineProfile {
  std::string name;
  std::size_t gpus_per_node = 4;
  /// Saturated per-device operator throughput in DOF/s (Fig. 7 regime).
  double peak_dof_per_s = 24e9;
  /// Problem size at which a device reaches half of peak throughput; controls
  /// the strong-scaling rolloff (launch overheads / underfilled kernels).
  double half_saturation_dof = 2.0e6;
  /// Point-to-point message latency (s) including launch/progress overhead.
  double latency_s = 8e-6;
  /// Effective point-to-point bandwidth (bytes/s).
  double bandwidth_bytes_per_s = 90e9;

  /// Paper-relevant presets.
  static MachineProfile el_capitan();
  static MachineProfile alps();
  static MachineProfile perlmutter();
  /// Calibrated from this container (used for model-vs-measured tests).
  static MachineProfile local_cpu(double measured_dof_per_s);
};

/// Result of simulating one RK4 timestep of the wave solver on a partition.
struct StepCost {
  double compute_s = 0.0;   ///< max over ranks of local kernel time
  double comm_s = 0.0;      ///< max over ranks of halo-exchange time
  double total_s = 0.0;     ///< compute + comm
  double efficiency = 0.0;  ///< vs. a single rank holding the same local size
};

/// Scaling simulator for the acoustic-gravity RK4 solver.
class ScalingSimulator {
 public:
  /// `dofs_per_cell`: states per hex element (depends on FE order);
  /// `bytes_per_face`: halo bytes exchanged per shared element face per
  /// operator application (pressure + velocity traces, FP64).
  ScalingSimulator(MachineProfile machine, double dofs_per_cell,
                   double bytes_per_face);

  /// Predicted wall time for one RK4 timestep (4 operator applications, each
  /// followed by a halo exchange) of the mesh `cells` on `ranks` devices.
  [[nodiscard]] StepCost timestep(std::array<std::size_t, 3> cells,
                                  std::size_t ranks) const;

  /// Weak scaling: local mesh box fixed per rank, ranks swept. Returns one
  /// StepCost per entry of `rank_counts`; `efficiency` is t(1-equivalent)/t.
  [[nodiscard]] std::vector<StepCost> weak_scaling(
      std::array<std::size_t, 3> local_cells,
      const std::vector<std::size_t>& rank_counts) const;

  /// Strong scaling: global mesh fixed, ranks swept. `efficiency` is
  /// (t_first * r_first) / (t * r) relative to the first entry.
  [[nodiscard]] std::vector<StepCost> strong_scaling(
      std::array<std::size_t, 3> global_cells,
      const std::vector<std::size_t>& rank_counts) const;

  [[nodiscard]] const MachineProfile& machine() const { return machine_; }

  /// Device throughput (DOF/s) at local problem size n (saturation curve).
  [[nodiscard]] double throughput_at(double local_dof) const;

 private:
  MachineProfile machine_;
  double dofs_per_cell_;
  double bytes_per_face_;
};

/// Real halo exchange over in-memory rank buffers: each rank owns a
/// (nx x ny x nz) sub-box of a global structured scalar field plus one ghost
/// layer; exchange() copies boundary faces between neighbouring ranks through
/// explicit pack/send/unpack buffers, exactly as an MPI implementation would.
/// Used to validate the decomposition code path against the serial field.
class HaloExchange3D {
 public:
  HaloExchange3D(GridPartition3D partition);

  /// Local field storage for `rank`, including one ghost layer on faces that
  /// have a neighbour: dimensions (sx+2) x (sy+2) x (sz+2) with the owned box
  /// at offset 1 (ghost slots unused on physical boundaries).
  [[nodiscard]] std::vector<double> make_local_field(std::size_t rank) const;

  /// Index into a local field created by make_local_field.
  [[nodiscard]] std::size_t local_index(std::size_t rank, std::size_t ix,
                                        std::size_t iy, std::size_t iz) const;

  /// Scatter a global field (cells[0]*cells[1]*cells[2], x-fastest) into
  /// per-rank local fields (ghosts unfilled).
  [[nodiscard]] std::vector<std::vector<double>> scatter(
      const std::vector<double>& global) const;

  /// Exchange ghost faces between all ranks (pack -> buffer -> unpack).
  /// Returns total bytes moved (for cross-checking the cost model).
  std::size_t exchange(std::vector<std::vector<double>>& locals) const;

  /// Gather owned boxes back into a global field.
  [[nodiscard]] std::vector<double> gather(
      const std::vector<std::vector<double>>& locals) const;

  [[nodiscard]] const GridPartition3D& partition() const { return part_; }

 private:
  GridPartition3D part_;
};

}  // namespace tsunami
