#pragma once

// NUMA-aware first-touch buffers for the long-lived frequency-domain slabs.
//
// Linux (and every mainstream OS) maps anonymous pages to the NUMA node of
// the thread that FIRST WRITES them, not the thread that malloc'd them. A
// std::vector zero-fills on the constructing thread, so on a multi-socket
// box every page of a slab lands on one node and remote workers pay
// cross-socket latency on each apply. NumaArray instead allocates
// uninitialized memory and zero-fills it with the same chunked parallel
// loop the consumers use — each page is first touched by (statistically)
// the worker that will stream it later. On a single-node machine the
// parallel fill is just a parallel memset: a graceful no-op for placement,
// no special-casing, no libnuma dependency.

#include <cstddef>

namespace tsunami {

/// Fixed-size double buffer, 64-byte aligned, first-touched in parallel.
/// Vector-like surface (data/size/operator[]) for the slab code; contents
/// start zeroed.
class NumaArray {
 public:
  NumaArray() = default;
  explicit NumaArray(std::size_t n);
  NumaArray(const NumaArray& other);
  NumaArray(NumaArray&& other) noexcept;
  NumaArray& operator=(const NumaArray& other);
  NumaArray& operator=(NumaArray&& other) noexcept;
  ~NumaArray();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tsunami
