#include "parallel/partition.hpp"

#include <limits>
#include <stdexcept>

namespace tsunami {

std::vector<Range> partition_1d(std::size_t n, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("partition_1d: parts == 0");
  std::vector<Range> out(parts);
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < parts; ++r) {
    const std::size_t len = base + (r < rem ? 1 : 0);
    out[r] = Range{cursor, cursor + len};
    cursor += len;
  }
  return out;
}

Range block_range(std::size_t n, std::size_t parts, std::size_t rank) {
  if (rank >= parts) throw std::out_of_range("block_range: rank >= parts");
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  const std::size_t begin =
      rank * base + (rank < rem ? rank : rem);
  const std::size_t len = base + (rank < rem ? 1 : 0);
  return Range{begin, begin + len};
}

GridPartition3D::GridPartition3D(std::array<std::size_t, 3> cells,
                                 std::array<std::size_t, 3> procs)
    : cells_(cells), procs_(procs) {
  for (int d = 0; d < 3; ++d) {
    if (procs_[d] == 0)
      throw std::invalid_argument("GridPartition3D: zero proc dimension");
    if (procs_[d] > cells_[d])
      throw std::invalid_argument(
          "GridPartition3D: more ranks than cells in a dimension");
  }
}

std::array<std::size_t, 3> GridPartition3D::coords(std::size_t rank) const {
  const std::size_t ix = rank % procs_[0];
  const std::size_t iy = (rank / procs_[0]) % procs_[1];
  const std::size_t iz = rank / (procs_[0] * procs_[1]);
  return {ix, iy, iz};
}

std::array<Range, 3> GridPartition3D::local_box(std::size_t rank) const {
  if (rank >= num_ranks())
    throw std::out_of_range("GridPartition3D: rank out of range");
  const auto c = coords(rank);
  return {block_range(cells_[0], procs_[0], c[0]),
          block_range(cells_[1], procs_[1], c[1]),
          block_range(cells_[2], procs_[2], c[2])};
}

std::size_t GridPartition3D::local_cells(std::size_t rank) const {
  const auto box = local_box(rank);
  return box[0].size() * box[1].size() * box[2].size();
}

std::vector<std::size_t> GridPartition3D::face_neighbors(
    std::size_t rank) const {
  const auto c = coords(rank);
  std::vector<std::size_t> out;
  auto linear = [&](std::size_t x, std::size_t y, std::size_t z) {
    return x + procs_[0] * (y + procs_[1] * z);
  };
  for (int d = 0; d < 3; ++d) {
    for (int s : {-1, +1}) {
      auto n = c;
      const long long moved = static_cast<long long>(n[d]) + s;
      if (moved < 0 || moved >= static_cast<long long>(procs_[d])) continue;
      n[d] = static_cast<std::size_t>(moved);
      out.push_back(linear(n[0], n[1], n[2]));
    }
  }
  return out;
}

std::size_t GridPartition3D::halo_faces(std::size_t rank) const {
  const auto c = coords(rank);
  const auto box = local_box(rank);
  std::size_t faces = 0;
  const std::size_t area[3] = {box[1].size() * box[2].size(),
                               box[0].size() * box[2].size(),
                               box[0].size() * box[1].size()};
  for (int d = 0; d < 3; ++d) {
    if (c[d] > 0) faces += area[d];
    if (c[d] + 1 < procs_[d]) faces += area[d];
  }
  return faces;
}

std::array<std::size_t, 2> choose_grid_2d(std::size_t p) {
  if (p == 0) throw std::invalid_argument("choose_grid_2d: p == 0");
  std::array<std::size_t, 2> best{1, p};
  std::size_t best_perimeter = std::numeric_limits<std::size_t>::max();
  for (std::size_t a = 1; a * a <= p; ++a) {
    if (p % a != 0) continue;
    const std::size_t b = p / a;
    if (a + b < best_perimeter) {
      best_perimeter = a + b;
      best = {a, b};
    }
  }
  return best;
}

std::array<std::size_t, 3> choose_grid_3d(std::array<std::size_t, 3> cells,
                                          std::size_t p) {
  if (p == 0) throw std::invalid_argument("choose_grid_3d: p == 0");
  std::array<std::size_t, 3> best{1, 1, 1};
  double best_surface = std::numeric_limits<double>::max();
  bool found = false;
  for (std::size_t px = 1; px <= p; ++px) {
    if (p % px != 0 || px > cells[0]) continue;
    const std::size_t rest = p / px;
    for (std::size_t py = 1; py <= rest; ++py) {
      if (rest % py != 0 || py > cells[1]) continue;
      const std::size_t pz = rest / py;
      if (pz > cells[2]) continue;
      // Average subdomain extents; total halo surface ~ sum of cut planes.
      const double lx = static_cast<double>(cells[0]) / static_cast<double>(px);
      const double ly = static_cast<double>(cells[1]) / static_cast<double>(py);
      const double lz = static_cast<double>(cells[2]) / static_cast<double>(pz);
      const double surface =
          static_cast<double>(px - 1) * ly * lz * static_cast<double>(py * pz) +
          static_cast<double>(py - 1) * lx * lz * static_cast<double>(px * pz) +
          static_cast<double>(pz - 1) * lx * ly * static_cast<double>(px * py);
      if (surface < best_surface) {
        best_surface = surface;
        best = {px, py, pz};
        found = true;
      }
    }
  }
  if (!found)
    throw std::invalid_argument(
        "choose_grid_3d: no factorization fits the cell box");
  return best;
}

}  // namespace tsunami
