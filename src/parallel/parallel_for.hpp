#pragma once

// Parallel-loop front ends over the persistent work-stealing ThreadPool.
// Keeping the scheduling in one place lets the numeric kernels read like
// serial code (Core Guidelines: isolate concurrency).
//
// Determinism contract: every loop here is cut into a chunk grid that
// depends only on the problem size and the machine (loop_chunks), never on
// the worker count. Chunks are claimed dynamically for load balance, but
// bodies write disjoint data per index and reductions combine per-chunk
// partials serially in chunk order — so all results are bit-identical at
// any worker count (asserted by tests/test_determinism.cpp).

#include <cstddef>
#include <vector>

#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"

namespace tsunami {

/// Worker count of the process-wide pool (the width parallel loops target).
inline int num_threads() {
  return static_cast<int>(ThreadPool::global().num_threads());
}

/// Parallel loop over [0, n). `body(i)` must be safe to invoke concurrently
/// for distinct indices. Indices are grouped into contiguous chunks; chunk
/// boundaries are worker-count-invariant.
template <typename Body>
void parallel_for(std::size_t n, const Body& body) {
  if (n == 0) return;
  const std::size_t chunks = loop_chunks(n);
  ThreadPool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const Range r = block_range(n, chunks, c);
    for (std::size_t i = r.begin; i < r.end; ++i) body(i);
  });
}

/// Parallel loop with a serial fallback below a size threshold (avoids
/// scheduling overhead on tiny inner problems).
template <typename Body>
void parallel_for_min(std::size_t n, std::size_t min_parallel,
                      const Body& body) {
  if (n < min_parallel) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    parallel_for(n, body);
  }
}

/// Parallel loop whose body also receives a dense scratch slot index
/// < min(num_threads(), chunks): `body(i, slot)`. Replaces the old
/// omp_get_thread_num() pattern for indexing preallocated per-participant
/// scratch. Below `min_parallel` runs serially with slot 0.
template <typename Body>
void parallel_for_slotted(std::size_t n, std::size_t min_parallel,
                          const Body& body) {
  if (n < min_parallel) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  const std::size_t chunks = loop_chunks(n);
  ThreadPool::global().run(chunks, [&](std::size_t c, std::size_t slot) {
    const Range r = block_range(n, chunks, c);
    for (std::size_t i = r.begin; i < r.end; ++i) body(i, slot);
  });
}

/// Parallel loop over contiguous sub-ranges of [0, n): `body(begin, end)` is
/// called once per chunk. For kernels that want to own the inner loop (e.g.
/// a column-panel sweep).
template <typename Body>
void parallel_for_ranges(std::size_t n, const Body& body) {
  if (n == 0) return;
  const std::size_t chunks = loop_chunks(n);
  ThreadPool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const Range r = block_range(n, chunks, c);
    body(r.begin, r.end);
  });
}

/// Parallel sum-reduction of `f(i)` over [0, n). Per-chunk partial sums are
/// combined serially in chunk order, so the result is bit-identical at any
/// worker count (though it differs from a single left-to-right serial sum —
/// callers compare against the same reduction, not a reference fold).
template <typename F>
double parallel_reduce_sum(std::size_t n, const F& f) {
  if (n == 0) return 0.0;
  const std::size_t chunks = loop_chunks(n);
  std::vector<double> partial(chunks, 0.0);
  ThreadPool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const Range r = block_range(n, chunks, c);
    double s = 0.0;
    for (std::size_t i = r.begin; i < r.end; ++i) s += f(i);
    partial[c] = s;
  });
  double sum = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) sum += partial[c];
  return sum;
}

/// Parallel max-reduction of `f(i)` over [0, n); 0.0 for an empty range
/// (matching the amax convention: magnitudes are non-negative).
template <typename F>
double parallel_reduce_max(std::size_t n, const F& f) {
  if (n == 0) return 0.0;
  const std::size_t chunks = loop_chunks(n);
  std::vector<double> partial(chunks, 0.0);
  ThreadPool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const Range r = block_range(n, chunks, c);
    double m = 0.0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const double v = f(i);
      if (v > m) m = v;
    }
    partial[c] = m;
  });
  double m = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (partial[c] > m) m = partial[c];
  }
  return m;
}

}  // namespace tsunami
