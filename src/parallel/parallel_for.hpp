#pragma once

// Thin OpenMP wrappers. Keeping the pragmas in one place lets the numeric
// kernels read like serial code (Core Guidelines: isolate concurrency).

#include <cstddef>

#include <omp.h>

namespace tsunami {

/// Number of OpenMP threads the runtime will use for a parallel region.
inline int num_threads() { return omp_get_max_threads(); }

/// Parallel loop over [0, n). `body` must be safe to invoke concurrently for
/// distinct indices. Grain control is left to the OpenMP static schedule,
/// which is the right default for the uniform-cost loops in this codebase.
template <typename Body>
void parallel_for(std::size_t n, const Body& body) {
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
}

/// Parallel loop with a serial fallback below a size threshold (avoids fork
/// overhead on tiny inner problems).
template <typename Body>
void parallel_for_min(std::size_t n, std::size_t min_parallel,
                      const Body& body) {
  if (n < min_parallel) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    parallel_for(n, body);
  }
}

/// Parallel sum-reduction of `f(i)` over [0, n).
template <typename F>
double parallel_reduce_sum(std::size_t n, const F& f) {
  double sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    sum += f(static_cast<std::size_t>(i));
  }
  return sum;
}

/// Parallel max-reduction of `f(i)` over [0, n); 0.0 for an empty range
/// (matching the amax convention: magnitudes are non-negative).
template <typename F>
double parallel_reduce_max(std::size_t n, const F& f) {
  double m = 0.0;
#pragma omp parallel for schedule(static) reduction(max : m)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    const double v = f(static_cast<std::size_t>(i));
    if (v > m) m = v;
  }
  return m;
}

}  // namespace tsunami
