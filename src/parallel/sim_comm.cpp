#include "parallel/sim_comm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsunami {

MachineProfile MachineProfile::el_capitan() {
  // AMD MI300A: Fig. 7 saturated ~24 GDOF/s (Fused PA); Slingshot-200.
  MachineProfile m;
  m.name = "El Capitan (MI300A)";
  m.gpus_per_node = 4;
  m.peak_dof_per_s = 24e9;
  m.half_saturation_dof = 3.0e6;
  m.latency_s = 6e-6;
  m.bandwidth_bytes_per_s = 100e9;
  return m;
}

MachineProfile MachineProfile::alps() {
  // NVIDIA GH200: Fig. 7 right panel saturates near ~29 GDOF/s; Slingshot-11.
  MachineProfile m;
  m.name = "Alps (GH200)";
  m.gpus_per_node = 4;
  m.peak_dof_per_s = 29e9;
  m.half_saturation_dof = 2.5e6;
  m.latency_s = 7e-6;
  m.bandwidth_bytes_per_s = 90e9;
  return m;
}

MachineProfile MachineProfile::perlmutter() {
  // NVIDIA A100 (40 GB): lower memory bandwidth -> ~1/3 of GH200 throughput.
  MachineProfile m;
  m.name = "Perlmutter (A100)";
  m.gpus_per_node = 4;
  m.peak_dof_per_s = 10e9;
  m.half_saturation_dof = 2.0e6;
  m.latency_s = 8e-6;
  m.bandwidth_bytes_per_s = 80e9;
  return m;
}

MachineProfile MachineProfile::local_cpu(double measured_dof_per_s) {
  MachineProfile m;
  m.name = "local CPU";
  m.gpus_per_node = 1;
  m.peak_dof_per_s = measured_dof_per_s;
  m.half_saturation_dof = 1.0e4;
  m.latency_s = 1e-7;  // in-memory "network"
  m.bandwidth_bytes_per_s = 10e9;
  return m;
}

ScalingSimulator::ScalingSimulator(MachineProfile machine, double dofs_per_cell,
                                   double bytes_per_face)
    : machine_(std::move(machine)),
      dofs_per_cell_(dofs_per_cell),
      bytes_per_face_(bytes_per_face) {
  if (dofs_per_cell_ <= 0 || bytes_per_face_ <= 0)
    throw std::invalid_argument("ScalingSimulator: nonpositive cost inputs");
}

double ScalingSimulator::throughput_at(double local_dof) const {
  // Saturation curve matching the measured shape of Fig. 7: throughput rises
  // with problem size and plateaus at peak once the device is filled.
  return machine_.peak_dof_per_s * local_dof /
         (local_dof + machine_.half_saturation_dof);
}

StepCost ScalingSimulator::timestep(std::array<std::size_t, 3> cells,
                                    std::size_t ranks) const {
  const auto shape = choose_grid_3d(cells, ranks);
  const GridPartition3D grid(cells, shape);

  // RK4: four stage evaluations per step, each applying the two key kernels
  // (gradient and divergence, Fig. 7) and exchanging the halo once.
  constexpr int kKernelPassesPerStep = 8;
  constexpr int kExchangesPerStep = 4;
  double max_compute = 0.0;
  double max_comm = 0.0;
  for (std::size_t r = 0; r < grid.num_ranks(); ++r) {
    const double local_dof =
        static_cast<double>(grid.local_cells(r)) * dofs_per_cell_;
    const double compute =
        kKernelPassesPerStep * local_dof / throughput_at(local_dof);

    const double msgs = static_cast<double>(grid.face_neighbors(r).size()) *
                        kExchangesPerStep;
    const double bytes = static_cast<double>(grid.halo_faces(r)) *
                         bytes_per_face_ * kExchangesPerStep;
    const double comm =
        msgs * machine_.latency_s + bytes / machine_.bandwidth_bytes_per_s;

    max_compute = std::max(max_compute, compute);
    max_comm = std::max(max_comm, comm);
  }

  StepCost c;
  c.compute_s = max_compute;
  c.comm_s = max_comm;
  c.total_s = max_compute + max_comm;

  // Efficiency vs. an ideal single rank holding the max local size with no
  // communication (the weak-scaling reference).
  double max_local_dof = 0.0;
  for (std::size_t r = 0; r < grid.num_ranks(); ++r)
    max_local_dof = std::max(
        max_local_dof, static_cast<double>(grid.local_cells(r)) * dofs_per_cell_);
  const double ref = kKernelPassesPerStep * max_local_dof / throughput_at(max_local_dof);
  c.efficiency = ref / c.total_s;
  return c;
}

std::vector<StepCost> ScalingSimulator::weak_scaling(
    std::array<std::size_t, 3> local_cells,
    const std::vector<std::size_t>& rank_counts) const {
  std::vector<StepCost> out;
  out.reserve(rank_counts.size());
  for (std::size_t p : rank_counts) {
    // Grow the global box by replicating the local box over the rank grid.
    const auto shape = choose_grid_2d(p);  // grow in x-y (margin-wide, like CSZ)
    const std::array<std::size_t, 3> cells{local_cells[0] * shape[0],
                                           local_cells[1] * shape[1],
                                           local_cells[2]};
    out.push_back(timestep(cells, p));
  }
  if (!out.empty()) {
    const double t1 = out.front().total_s;
    for (auto& c : out) c.efficiency = t1 / c.total_s;
  }
  return out;
}

std::vector<StepCost> ScalingSimulator::strong_scaling(
    std::array<std::size_t, 3> global_cells,
    const std::vector<std::size_t>& rank_counts) const {
  std::vector<StepCost> out;
  out.reserve(rank_counts.size());
  for (std::size_t p : rank_counts) out.push_back(timestep(global_cells, p));
  if (!out.empty()) {
    const double ref =
        out.front().total_s * static_cast<double>(rank_counts.front());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i].efficiency =
          ref / (out[i].total_s * static_cast<double>(rank_counts[i]));
  }
  return out;
}

namespace {

struct LocalBoxDims {
  std::size_t sx, sy, sz;  // owned extents
  std::size_t gx, gy, gz;  // storage extents incl. ghost layer
};

LocalBoxDims dims_of(const GridPartition3D& part, std::size_t rank) {
  const auto box = part.local_box(rank);
  LocalBoxDims d;
  d.sx = box[0].size();
  d.sy = box[1].size();
  d.sz = box[2].size();
  d.gx = d.sx + 2;
  d.gy = d.sy + 2;
  d.gz = d.sz + 2;
  return d;
}

}  // namespace

HaloExchange3D::HaloExchange3D(GridPartition3D partition)
    : part_(std::move(partition)) {}

std::vector<double> HaloExchange3D::make_local_field(std::size_t rank) const {
  const auto d = dims_of(part_, rank);
  return std::vector<double>(d.gx * d.gy * d.gz, 0.0);
}

std::size_t HaloExchange3D::local_index(std::size_t rank, std::size_t ix,
                                        std::size_t iy, std::size_t iz) const {
  const auto d = dims_of(part_, rank);
  return (ix + 1) + d.gx * ((iy + 1) + d.gy * (iz + 1));
}

std::vector<std::vector<double>> HaloExchange3D::scatter(
    const std::vector<double>& global) const {
  const auto& cells = part_.cells();
  if (global.size() != cells[0] * cells[1] * cells[2])
    throw std::invalid_argument("HaloExchange3D::scatter: size mismatch");
  std::vector<std::vector<double>> locals(part_.num_ranks());
  for (std::size_t r = 0; r < part_.num_ranks(); ++r) {
    locals[r] = make_local_field(r);
    const auto box = part_.local_box(r);
    for (std::size_t z = 0; z < box[2].size(); ++z)
      for (std::size_t y = 0; y < box[1].size(); ++y)
        for (std::size_t x = 0; x < box[0].size(); ++x) {
          const std::size_t gx = box[0].begin + x;
          const std::size_t gy = box[1].begin + y;
          const std::size_t gz = box[2].begin + z;
          locals[r][local_index(r, x, y, z)] =
              global[gx + cells[0] * (gy + cells[1] * gz)];
        }
  }
  return locals;
}

std::size_t HaloExchange3D::exchange(
    std::vector<std::vector<double>>& locals) const {
  std::size_t bytes_moved = 0;
  // For each rank and each of its +x/+y/+z neighbours, exchange the shared
  // face in both directions through explicit pack buffers (the "wire").
  for (std::size_t r = 0; r < part_.num_ranks(); ++r) {
    const auto c = part_.coords(r);
    const auto dr = dims_of(part_, r);
    const auto& procs = part_.procs();
    for (int axis = 0; axis < 3; ++axis) {
      if (c[axis] + 1 >= procs[axis]) continue;
      auto nc = c;
      nc[axis] += 1;
      const std::size_t n =
          nc[0] + procs[0] * (nc[1] + procs[1] * nc[2]);
      const auto dn = dims_of(part_, n);

      // Face extents in the two tangential directions.
      const int t1 = (axis + 1) % 3;
      const int t2 = (axis + 2) % 3;
      const std::size_t ext_r[3] = {dr.sx, dr.sy, dr.sz};
      const std::size_t e1 = ext_r[t1];
      const std::size_t e2 = ext_r[t2];
      const std::size_t ext_n[3] = {dn.sx, dn.sy, dn.sz};
      if (ext_n[t1] != e1 || ext_n[t2] != e2)
        throw std::runtime_error("HaloExchange3D: non-conforming face");

      std::vector<double> send_hi(e1 * e2);  // r's high face -> n's low ghost
      std::vector<double> send_lo(e1 * e2);  // n's low face  -> r's high ghost
      auto idx = [&](std::size_t rank, std::size_t a, std::size_t b1,
                     std::size_t b2) {
        std::size_t xyz[3];
        xyz[axis] = a;
        xyz[t1] = b1;
        xyz[t2] = b2;
        return local_index(rank, xyz[0], xyz[1], xyz[2]);
      };

      const std::size_t last_r = ext_r[axis] - 1;
      for (std::size_t b2 = 0; b2 < e2; ++b2)
        for (std::size_t b1 = 0; b1 < e1; ++b1) {
          send_hi[b1 + e1 * b2] = locals[r][idx(r, last_r, b1, b2)];
          send_lo[b1 + e1 * b2] = locals[n][idx(n, 0, b1, b2)];
        }
      // Unpack into ghost layers: ghost index -1 encoded as owned index
      // (std::size_t)(-1)+1 = storage slot 0, handled via local_index offset.
      for (std::size_t b2 = 0; b2 < e2; ++b2)
        for (std::size_t b1 = 0; b1 < e1; ++b1) {
          // n's low ghost (owned coord -1 along axis).
          std::size_t xyz[3];
          xyz[axis] = static_cast<std::size_t>(-1);
          xyz[t1] = b1;
          xyz[t2] = b2;
          locals[n][local_index(n, xyz[0], xyz[1], xyz[2])] =
              send_hi[b1 + e1 * b2];
          // r's high ghost (owned coord ext along axis).
          xyz[axis] = ext_r[axis];
          locals[r][local_index(r, xyz[0], xyz[1], xyz[2])] =
              send_lo[b1 + e1 * b2];
        }
      bytes_moved += 2 * e1 * e2 * sizeof(double);
    }
  }
  return bytes_moved;
}

std::vector<double> HaloExchange3D::gather(
    const std::vector<std::vector<double>>& locals) const {
  const auto& cells = part_.cells();
  std::vector<double> global(cells[0] * cells[1] * cells[2], 0.0);
  for (std::size_t r = 0; r < part_.num_ranks(); ++r) {
    const auto box = part_.local_box(r);
    for (std::size_t z = 0; z < box[2].size(); ++z)
      for (std::size_t y = 0; y < box[1].size(); ++y)
        for (std::size_t x = 0; x < box[0].size(); ++x) {
          const std::size_t gx = box[0].begin + x;
          const std::size_t gy = box[1].begin + y;
          const std::size_t gz = box[2].begin + z;
          global[gx + cells[0] * (gy + cells[1] * gz)] =
              locals[r][local_index(r, x, y, z)];
        }
  }
  return global;
}

}  // namespace tsunami
