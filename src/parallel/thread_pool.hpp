#pragma once

// Persistent work-stealing thread pool — the process-wide compute substrate.
//
// One pool, created on first use, serves every parallel loop in the repo:
// offline phase builds, ScenarioBank sweeps, the FFT/GEMM hot paths, and the
// WarningService drain jobs (the service submits fire-and-forget jobs to the
// same workers the numeric loops run on, so a busy tick and a background
// sweep share one set of threads instead of oversubscribing the machine).
//
// Scheduling: each worker owns a Chase-Lev deque (owner pushes/pops the
// bottom, idle thieves CAS the top), plus a mutex-guarded injection queue for
// jobs submitted from non-worker threads. Idle workers sleep on a condition
// variable with a generation counter, so a submit never races a worker into
// missing its wakeup.
//
// Determinism contract (load-balancing without result drift): `run()` splits
// work into ITEMS whose count the caller derives only from the problem size
// and the machine (see loop_chunks), never from the worker count. Items are
// claimed dynamically — which thread runs an item is scheduling-dependent —
// so bodies must write disjoint data per item; reductions must store
// per-item partials and combine them serially in item order. Under those
// rules every result is bit-identical at any worker count, which the
// determinism suite asserts for worker counts {1, 2, 4, hardware}.
//
// Nested parallelism is deadlock-free by construction: a thread inside
// `run()` only ever (a) claims and executes items or (b) waits for items
// that some thread is actively executing, so the wait graph is the loop
// nesting DAG.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace tsunami {

/// Number of chunks a size-n loop is cut into: min(n, max(64, 4 * hardware
/// cores)). Depends only on n and the machine — NOT on the current worker
/// count — which is what makes chunked results worker-count-invariant.
[[nodiscard]] std::size_t loop_chunks(std::size_t n);

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_threads()). Always spawns at
  /// least one worker thread so fire-and-forget submit() jobs make progress
  /// even in a single-threaded configuration.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized from TSUNAMI_NUM_THREADS (fallback
  /// OMP_NUM_THREADS, then hardware_concurrency) on first use.
  static ThreadPool& global();

  /// Environment-resolved default worker count (>= 1).
  [[nodiscard]] static std::size_t default_threads();

  /// Current worker-thread count (the width parallel loops target).
  [[nodiscard]] std::size_t num_threads() const;

  /// Fire-and-forget job. Runs on some worker; exceptions escaping the job
  /// terminate (wrap in try/catch if failure must be reported). Callable
  /// from any thread, including from inside a running job.
  void submit(std::function<void()> job);

  /// Blocks until every submit()ted job has finished. Does not interact with
  /// run() loops (those are synchronous already).
  void wait_idle();

  /// Joins all workers and respawns `threads` (0 = default_threads()) of
  /// them. Pending submitted jobs are preserved and picked up by the new
  /// workers. Caller must ensure no run() loop is in flight. Intended for
  /// the determinism tests and the scaling bench.
  void resize(std::size_t threads);

  /// Cumulative cross-worker steals (observability for the stress tests).
  [[nodiscard]] std::size_t steal_count() const;

  /// Point-in-time counters of one worker thread, indexed [0, num_threads()).
  /// Counts reset when the worker set is respawned (construction, resize());
  /// the pool-wide steal_count() persists across resizes.
  struct WorkerStats {
    std::uint64_t jobs = 0;       ///< jobs executed (submit jobs + loop helpers)
    std::uint64_t steals = 0;     ///< successful steals performed BY this worker
    double busy_seconds = 0.0;    ///< wall time spent inside job bodies
    std::size_t queue_depth = 0;  ///< entries currently in its deque
  };

  /// Per-worker counters, one entry per worker. Safe to call concurrently
  /// with running work (counters are relaxed atomics); not concurrently with
  /// resize().
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// Seconds since the current worker set was spawned (utilization
  /// denominator: busy_seconds / uptime_seconds).
  [[nodiscard]] double uptime_seconds() const;

  /// Runs `f(item, slot)` for every item in [0, nitems). Blocks until all
  /// items complete; the calling thread participates. `slot` is a dense
  /// per-participant index < min(num_threads(), nitems), usable to index
  /// preallocated scratch. The first exception thrown by `f` is rethrown
  /// here after the loop quiesces (remaining items are skipped, not run).
  template <typename F>
  void run(std::size_t nitems, F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_items(
        nitems,
        [](void* ctx, std::size_t item, std::size_t slot) {
          (*static_cast<Fn*>(ctx))(item, slot);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

 private:
  using ItemFn = void (*)(void* ctx, std::size_t item, std::size_t slot);
  void run_items(std::size_t nitems, ItemFn fn, void* ctx);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tsunami
