#pragma once

// Block partitioners for 1-D ranges and 2-D/3-D processor grids.
//
// The paper partitions its hexahedral meshes over 3-D processor grids
// (Table II: e.g. 80 x 136 x 4 on El Capitan) and its Toeplitz matvec over an
// adaptively shaped 2-D GPU grid [26]. These utilities reproduce both
// decompositions; the simulated scaling runtime (sim_comm) uses them to carve
// subdomains and derive halo-exchange volumes.

#include <array>
#include <cstddef>
#include <vector>

namespace tsunami {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Split [0, n) into `parts` contiguous blocks whose sizes differ by at most
/// one (remainder distributed to the leading blocks).
[[nodiscard]] std::vector<Range> partition_1d(std::size_t n, std::size_t parts);

/// The block owned by `rank` in the partition_1d decomposition.
[[nodiscard]] Range block_range(std::size_t n, std::size_t parts,
                                std::size_t rank);

/// A 3-D processor grid (px x py x pz) over a structured element box
/// (nx x ny x nz), as in the paper's Table II mesh decompositions.
class GridPartition3D {
 public:
  GridPartition3D(std::array<std::size_t, 3> cells,
                  std::array<std::size_t, 3> procs);

  [[nodiscard]] std::size_t num_ranks() const {
    return procs_[0] * procs_[1] * procs_[2];
  }

  /// The element sub-box [x-range, y-range, z-range] owned by `rank`.
  [[nodiscard]] std::array<Range, 3> local_box(std::size_t rank) const;

  /// Rank coordinates (ix, iy, iz) of linear `rank`.
  [[nodiscard]] std::array<std::size_t, 3> coords(std::size_t rank) const;

  /// Number of elements owned by `rank`.
  [[nodiscard]] std::size_t local_cells(std::size_t rank) const;

  /// Ranks sharing a face with `rank` (<= 6 neighbours).
  [[nodiscard]] std::vector<std::size_t> face_neighbors(std::size_t rank) const;

  /// Total face area (in element faces) `rank` shares with neighbours; this is
  /// the per-step halo-exchange surface that drives communication volume.
  [[nodiscard]] std::size_t halo_faces(std::size_t rank) const;

  [[nodiscard]] const std::array<std::size_t, 3>& cells() const {
    return cells_;
  }
  [[nodiscard]] const std::array<std::size_t, 3>& procs() const {
    return procs_;
  }

 private:
  std::array<std::size_t, 3> cells_;
  std::array<std::size_t, 3> procs_;
};

/// Choose a near-square 2-D processor-grid shape p1 x p2 = p minimizing
/// (perimeter-weighted) communication, mimicking the adaptive grid-shape
/// tuning of the FFTMatvec library [26]. Returns {p1, p2} with p1 <= p2.
[[nodiscard]] std::array<std::size_t, 2> choose_grid_2d(std::size_t p);

/// Choose a 3-D grid shape for a cell box, preferring shapes that minimize
/// total halo surface (the paper's Table II shapes follow this pattern).
[[nodiscard]] std::array<std::size_t, 3> choose_grid_3d(
    std::array<std::size_t, 3> cells, std::size_t p);

}  // namespace tsunami
