#!/usr/bin/env python3
"""Self-tests for tools/lint/lint.py.

Two layers:
  * unit tests driving each scan_* rule over inline C++ snippets
    (positive: the violation fires; negative: compliant code is clean);
  * an end-to-end test materializing a miniature repo tree (src/ +
    exemptions.txt) in a temp dir and running lint_tree / atomics_doc on it,
    including the fixtures/ corpus checked in next to this file.

Registered as the `lint_selftest` CTest.
"""

from __future__ import annotations

import tempfile
import unittest
from pathlib import Path

import lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_rules(text: str, path: str = "src/x.cpp"):
    fl = lint.FileLint(path, text)
    return lint.lint_file(fl, path.endswith(".hpp"))


def rules_of(violations):
    return sorted(v.rule for v in violations)


class StripCodeTest(unittest.TestCase):
    def test_comments_and_strings_blanked_positions_kept(self):
        text = 'a; // rand()\nb = "time(NULL)";\n/* clock() */ c;\n'
        stripped = lint.strip_code(text)
        self.assertEqual(len(stripped), len(text))
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        for token in ("rand", "time", "clock"):
            self.assertNotIn(token, stripped)
        self.assertIn("a;", stripped)
        self.assertIn("c;", stripped)

    def test_escaped_quote_does_not_end_string(self):
        stripped = lint.strip_code('x = "a\\"rand()"; y;')
        self.assertNotIn("rand", stripped)
        self.assertIn("y;", stripped)


class AtomicRulesTest(unittest.TestCase):
    def test_defaulted_order_flagged(self):
        violations, _ = run_rules("void f() { flag.store(true); }\n")
        self.assertIn("atomic-explicit-order", rules_of(violations))

    def test_explicit_order_with_mo_comment_clean(self):
        violations, sites = run_rules(
            "void f() {\n"
            "  // mo: relaxed -- statistic\n"
            "  n.fetch_add(1, std::memory_order_relaxed);\n"
            "}\n")
        self.assertEqual(violations, [])
        self.assertEqual(len(sites), 1)
        self.assertEqual(sites[0].order, "relaxed")
        self.assertIn("statistic", sites[0].rationale)

    def test_project_alias_counts_as_explicit(self):
        violations, sites = run_rules(
            "void f() {\n"
            "  // mo: relaxed -- alias form\n"
            "  n.fetch_add(1, relaxed);\n"
            "}\n")
        self.assertEqual(violations, [])
        self.assertEqual(sites[0].order, "relaxed")

    def test_missing_mo_comment_flagged(self):
        violations, _ = run_rules(
            "void f() { n.load(std::memory_order_acquire); }\n")
        self.assertEqual(rules_of(violations), ["atomic-mo-comment"])

    def test_mo_comment_radius(self):
        pad = "  int x;\n" * lint.MO_COMMENT_RADIUS
        text = ("// mo: relaxed -- too far away\n" + pad +
                "void f() { n.load(std::memory_order_relaxed); }\n")
        violations, _ = run_rules(text)
        self.assertEqual(rules_of(violations), ["atomic-mo-comment"])

    def test_one_comment_covers_a_cluster(self):
        violations, _ = run_rules(
            "void f() {\n"
            "  // mo: relaxed -- both are plain counters\n"
            "  a.fetch_add(1, std::memory_order_relaxed);\n"
            "  b.fetch_add(1, std::memory_order_relaxed);\n"
            "}\n")
        self.assertEqual(violations, [])

    def test_seq_cst_flagged_without_exemption(self):
        violations, _ = run_rules(
            "void f() {\n"
            "  // mo: seq_cst -- protocol\n"
            "  t.store(1, std::memory_order_seq_cst);\n"
            "}\n")
        self.assertEqual(rules_of(violations), ["atomic-seq-cst"])

    def test_seq_cst_inline_allow(self):
        violations, _ = run_rules(
            "void f() {\n"
            "  // mo: seq_cst -- protocol\n"
            "  // lint: allow(atomic-seq-cst) deque protocol\n"
            "  t.store(1, std::memory_order_seq_cst);\n"
            "}\n")
        self.assertEqual(violations, [])

    def test_multiline_call_args_extracted(self):
        violations, sites = run_rules(
            "void f() {\n"
            "  // mo: release -- publishes\n"
            "  p.store(grown,\n"
            "          std::memory_order_release);\n"
            "}\n")
        self.assertEqual(violations, [])
        self.assertEqual(sites[0].order, "release")

    def test_commented_out_atomic_ignored(self):
        violations, sites = run_rules("void f() { /* n.load(); */ }\n")
        self.assertEqual(violations, [])
        self.assertEqual(sites, [])


class HotPathRulesTest(unittest.TestCase):
    def test_alloc_in_hot_path_flagged(self):
        violations, _ = run_rules(
            "TSUNAMI_HOT_PATH void f() { v.push_back(1); }\n")
        self.assertEqual(rules_of(violations), ["hot-path-alloc"])

    def test_lock_in_hot_path_flagged(self):
        violations, _ = run_rules(
            "TSUNAMI_HOT_PATH void f() {\n"
            "  const std::lock_guard<std::mutex> lock(m);\n"
            "}\n")
        self.assertIn("hot-path-lock", rules_of(violations))

    def test_alloc_outside_hot_path_clean(self):
        violations, _ = run_rules(
            "void cold() { v.push_back(1); new int; }\n")
        self.assertEqual(violations, [])

    def test_grow_once_allow(self):
        violations, _ = run_rules(
            "TSUNAMI_HOT_PATH void f() {\n"
            "  ws.resize(n);  // lint: allow(hot-path-alloc) grow-once\n"
            "}\n")
        self.assertEqual(violations, [])

    def test_declaration_only_not_scanned(self):
        # The annotation on a declaration must not swallow the next
        # function's body.
        violations, _ = run_rules(
            "TSUNAMI_HOT_PATH void f(int n);\n"
            "void cold() { v.push_back(1); }\n")
        self.assertEqual(violations, [])

    def test_macro_definition_line_ignored(self):
        violations, _ = run_rules(
            "#define TSUNAMI_HOT_PATH [[gnu::hot]]\n"
            "void cold() { v.push_back(1); }\n")
        self.assertEqual(violations, [])

    def test_multiline_body(self):
        violations, _ = run_rules(
            "TSUNAMI_HOT_PATH static void f(\n"
            "    int a,\n"
            "    int b) {\n"
            "  for (int i = 0; i < a; ++i) {\n"
            "    out.emplace_back(i);\n"
            "  }\n"
            "}\n")
        self.assertEqual(rules_of(violations), ["hot-path-alloc"])


class NondeterminismTest(unittest.TestCase):
    def test_rand_flagged(self):
        violations, _ = run_rules("int f() { return rand(); }\n")
        self.assertEqual(rules_of(violations), ["nondeterminism"])

    def test_random_device_flagged(self):
        violations, _ = run_rules("std::random_device rd;\n")
        self.assertEqual(rules_of(violations), ["nondeterminism"])

    def test_time_null_flagged(self):
        violations, _ = run_rules("long t = time(NULL);\n")
        self.assertEqual(rules_of(violations), ["nondeterminism"])

    def test_lookbehind_spares_suffixed_names(self):
        violations, _ = run_rules(
            "double total_time() { return s.total_time(); }\n"
            "double wallclock() { return sw.clock_seconds; }\n")
        self.assertEqual(violations, [])

    def test_inline_allow(self):
        violations, _ = run_rules(
            "long t = time(NULL);  // lint: allow(nondeterminism) boot stamp\n")
        self.assertEqual(violations, [])


class WorkspacePairingTest(unittest.TestCase):
    def test_unpaired_ws_overload_flagged(self):
        violations, _ = run_rules(
            "void apply(std::span<const double> x, std::span<double> y,\n"
            "           Workspace& ws) const;\n",
            path="src/x.hpp")
        self.assertEqual(rules_of(violations), ["workspace-pairing"])

    def test_paired_overloads_clean(self):
        violations, _ = run_rules(
            "void apply(std::span<const double> x, std::span<double> y,\n"
            "           Workspace& ws) const;\n"
            "void apply(std::span<const double> x, std::span<double> y) const;\n",
            path="src/x.hpp")
        self.assertEqual(violations, [])

    def test_impl_methods_skipped(self):
        violations, _ = run_rules(
            "void apply_impl(std::span<const double> x, Workspace& ws) const;\n",
            path="src/x.hpp")
        self.assertEqual(violations, [])

    def test_rule_is_header_only(self):
        violations, _ = run_rules(
            "void T::apply(std::span<const double> x, std::span<double> y,\n"
            "              Workspace& ws) const {}\n",
            path="src/x.cpp")
        self.assertEqual(violations, [])


class EndToEndTest(unittest.TestCase):
    def make_tree(self, files: dict[str, str], exemptions: str = "") -> Path:
        root = Path(self.enterContext(tempfile.TemporaryDirectory()))
        for rel, text in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text)
        if exemptions:
            p = root / "tools" / "lint" / "exemptions.txt"
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(exemptions)
        return root

    def test_fixture_corpus(self):
        """The checked-in fixtures encode the expected rule hits per file."""
        self.assertTrue(FIXTURES.is_dir(), "fixtures/ corpus missing")
        for path in sorted(FIXTURES.glob("*.cpp")) + sorted(
                FIXTURES.glob("*.hpp")):
            with self.subTest(fixture=path.name):
                first = path.read_text().splitlines()[0]
                self.assertTrue(first.startswith("// expect:"), path.name)
                expected = sorted(first.removeprefix("// expect:").split())
                fl = lint.FileLint(path.name, path.read_text())
                violations, _ = lint.lint_file(fl, path.suffix == ".hpp")
                self.assertEqual(rules_of(violations), expected)

    def test_lint_tree_applies_exemptions(self):
        root = self.make_tree(
            {"src/a.cpp": "void f() {\n"
                          "  // mo: seq_cst -- modeled protocol\n"
                          "  t.store(1, std::memory_order_seq_cst);\n"
                          "}\n"},
            exemptions="atomic-seq-cst  src/a.cpp  modeled protocol\n")
        violations, sites = lint.lint_tree(root)
        self.assertEqual(violations, [])
        self.assertEqual(len(sites), 1)

    def test_lint_tree_reports_unexempted(self):
        root = self.make_tree(
            {"src/a.cpp": "int f() { return rand(); }\n"})
        violations, _ = lint.lint_tree(root)
        self.assertEqual(rules_of(violations), ["nondeterminism"])

    def test_malformed_exemption_rejected(self):
        root = self.make_tree({"src/a.cpp": "int x;\n"},
                              exemptions="atomic-seq-cst src/a.cpp\n")
        with self.assertRaises(SystemExit):
            lint.lint_tree(root)

    def test_atomics_doc_roundtrip_and_staleness(self):
        root = self.make_tree(
            {"src/a.cpp": "void f() {\n"
                          "  // mo: relaxed -- counter\n"
                          "  n.fetch_add(1, std::memory_order_relaxed);\n"
                          "}\n"})
        self.assertEqual(lint.main(["--root", str(root),
                                    "--write-atomics-doc"]), 0)
        self.assertEqual(lint.main(["--root", str(root),
                                    "--check-atomics-doc"]), 0)
        doc = root / "docs" / "atomics.md"
        self.assertIn("n.fetch_add", doc.read_text())
        doc.write_text(doc.read_text() + "drift\n")
        self.assertEqual(lint.main(["--root", str(root),
                                    "--check-atomics-doc"]), 1)

    def test_main_exit_codes(self):
        clean = self.make_tree({"src/a.cpp": "int x;\n"})
        self.assertEqual(lint.main(["--root", str(clean)]), 0)
        dirty = self.make_tree({"src/a.cpp": "int f() { return rand(); }\n"})
        self.assertEqual(lint.main(["--root", str(dirty)]), 1)


if __name__ == "__main__":
    unittest.main()
