#!/usr/bin/env python3
"""Project-invariant linter for the tsunami digital-twin repository.

Enforces repo-specific contracts that no generic analyzer expresses:

  atomic-explicit-order   Every std::atomic load/store/RMW/CAS names an
                          explicit std::memory_order (or a project alias such
                          as `relaxed`). Defaulted seq_cst hides intent and
                          cost.
  atomic-mo-comment       Every atomic operation carries a `// mo:` rationale
                          comment on the same line or within the preceding
                          MO_COMMENT_RADIUS lines (one comment covers a
                          cluster). The rationale is what reviewers and the
                          docs/atomics.md audit table read.
  atomic-seq-cst          memory_order_seq_cst requires a documented
                          exemption (exemptions.txt) or an inline allow: the
                          default fence is either a bug or a deliberate,
                          explained choice (the Chase-Lev deque).
  hot-path-alloc          No heap allocation (`new`, malloc family) or
                          container growth (push_back/resize/reserve/...)
                          inside a function annotated TSUNAMI_HOT_PATH.
                          Grow-once workspace sites carry an inline allow.
  hot-path-lock           No std::mutex/lock_guard/unique_lock/scoped_lock/
                          condition_variable inside TSUNAMI_HOT_PATH bodies.
  nondeterminism          No rand()/srand()/time()/clock()/std::random_device
                          in src/: all randomness flows through the seeded
                          util/rng.hpp Rng so every run is replayable.
  workspace-pairing       Any `apply*` method that takes a workspace
                          parameter must keep a legacy overload without it
                          (the workspace-less API routes through thread_local
                          scratch; dropping it silently breaks callers).

Inline suppression (same line or the line directly above the violation):

    code();  // lint: allow(rule-id) one-line why

File-level exemptions live in tools/lint/exemptions.txt (rule, path, reason).

Usage:
    lint.py --root REPO_ROOT                 # lint src/, exit 1 on violations
    lint.py --root REPO_ROOT --write-atomics-doc   # regenerate docs/atomics.md
    lint.py --root REPO_ROOT --check-atomics-doc   # fail if the doc is stale

Run as a CTest (`lint_project`, `lint_atomics_doc`); self-tested by
tools/lint/test_lint.py over the fixtures/ corpus.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

MO_COMMENT_RADIUS = 8  # lines above an atomic op a `// mo:` comment covers

ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)

# Bare identifiers the project uses as memory_order aliases (e.g.
# service_telemetry.hpp's `static constexpr auto relaxed = ...`).
ORDER_ALIASES = {"relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst"}

ALLOC_TOKENS = [
    (r"\bnew\b", "operator new"),
    (r"\bmalloc\s*\(", "malloc"),
    (r"\bcalloc\s*\(", "calloc"),
    (r"\brealloc\s*\(", "realloc"),
    (r"\.\s*push_back\s*\(", "push_back"),
    (r"\.\s*emplace_back\s*\(", "emplace_back"),
    (r"\.\s*emplace\s*\(", "emplace"),
    (r"\.\s*resize\s*\(", "resize"),
    (r"\.\s*reserve\s*\(", "reserve"),
    (r"\.\s*insert\s*\(", "insert"),
    (r"\.\s*assign\s*\(", "assign"),
    (r"\.\s*append\s*\(", "append"),
]

LOCK_TOKENS = [
    (r"\bstd\s*::\s*mutex\b", "std::mutex"),
    (r"\bstd\s*::\s*shared_mutex\b", "std::shared_mutex"),
    (r"\block_guard\b", "lock_guard"),
    (r"\bunique_lock\b", "unique_lock"),
    (r"\bshared_lock\b", "shared_lock"),
    (r"\bscoped_lock\b", "scoped_lock"),
    (r"\bcondition_variable\b", "condition_variable"),
    (r"\bpthread_mutex_\w+\s*\(", "pthread_mutex"),
]

NONDET_TOKENS = [
    (r"\brand\s*\(\s*\)", "rand()"),
    (r"\bsrand\s*\(", "srand()"),
    (r"\bstd\s*::\s*random_device\b", "std::random_device"),
    (r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|\))", "time()"),
    (r"(?<![\w:])clock\s*\(\s*\)", "clock()"),
]

HOT_PATH_MACRO = "TSUNAMI_HOT_PATH"
ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z0-9-]+)\)")
MO_COMMENT_RE = re.compile(r"//.*\bmo:")


class Violation:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving every
    newline and column position, so regexes see only code."""
    out = list(text)
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def line_of(text: str, index: int) -> int:
    """1-based line number of a character index."""
    return text.count("\n", 0, index) + 1


def balanced_span(text: str, open_index: int) -> int:
    """Index one past the parenthesis/brace that closes text[open_index]."""
    opener = text[open_index]
    closer = {"(": ")", "{": "}", "[": "]"}[opener]
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == closer:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class FileLint:
    """One source file's text, stripped view, and suppression lookups."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.stripped = strip_code(text)
        self.raw_lines = text.splitlines()
        self.stripped_lines = self.stripped.splitlines()

    def allowed(self, rule: str, line: int) -> bool:
        """Inline allow on the violation line or the line directly above."""
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.raw_lines):
                for m in ALLOW_RE.finditer(self.raw_lines[ln - 1]):
                    if m.group(1) == rule:
                        return True
        return False

    def has_mo_comment(self, line: int) -> bool:
        lo = max(1, line - MO_COMMENT_RADIUS)
        return any(
            MO_COMMENT_RE.search(self.raw_lines[ln - 1])
            for ln in range(lo, line + 1)
            if ln <= len(self.raw_lines)
        )

    def mo_comment_text(self, line: int) -> str:
        """Rationale text of the covering `// mo:` comment (nearest above)."""
        lo = max(1, line - MO_COMMENT_RADIUS)
        for ln in range(line, lo - 1, -1):
            if ln > len(self.raw_lines):
                continue
            m = re.search(r"//.*?\bmo:\s*(.*)", self.raw_lines[ln - 1])
            if m:
                return m.group(1).strip()
        return ""


class AtomicSite:
    def __init__(self, path: str, line: int, expr: str, op: str, order: str,
                 rationale: str):
        self.path = path
        self.line = line
        self.expr = expr
        self.op = op
        self.order = order
        self.rationale = rationale


def preprocessor_line(fl: FileLint, line: int) -> bool:
    return fl.stripped_lines[line - 1].lstrip().startswith("#") if (
        1 <= line <= len(fl.stripped_lines)) else False


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

ATOMIC_OP_RE = re.compile(
    r"\.\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")


def scan_atomics(fl: FileLint):
    """Yield (violations, sites) for the three atomic-* rules."""
    violations: list[Violation] = []
    sites: list[AtomicSite] = []
    for m in ATOMIC_OP_RE.finditer(fl.stripped):
        op = m.group(1)
        line = line_of(fl.stripped, m.start())
        # `.load(` etc. on non-atomic types would need an inline allow; the
        # repo keeps atomics in dedicated modules, so in practice every match
        # is an atomic op.
        open_idx = fl.stripped.index("(", m.end() - 1)
        close = balanced_span(fl.stripped, open_idx)
        args = fl.stripped[open_idx + 1 : close - 1]
        orders = re.findall(r"memory_order_(\w+)", args)
        if not orders:
            orders = [w for w in re.findall(r"[A-Za-z_]\w*", args)
                      if w in ORDER_ALIASES]
        # Object expression for the audit table: identifier chain before '.'.
        head = fl.stripped[: m.start()]
        om = re.search(r"[\w\]\)]+(?:(?:\.|->)\w+|\[[^\[\]]*\])*$", head)
        expr = (om.group(0) if om else "?") + "." + op

        if not orders:
            if not fl.allowed("atomic-explicit-order", line):
                violations.append(Violation(
                    "atomic-explicit-order", fl.path, line,
                    f"{expr}(...) without an explicit std::memory_order"))
            order_text = "(default seq_cst)"
        else:
            order_text = ", ".join(orders)

        if not fl.has_mo_comment(line) and not fl.allowed(
                "atomic-mo-comment", line):
            violations.append(Violation(
                "atomic-mo-comment", fl.path, line,
                f"{expr}(...) lacks a `// mo:` rationale comment within "
                f"{MO_COMMENT_RADIUS} lines"))

        if "seq_cst" in orders and not fl.allowed("atomic-seq-cst", line):
            violations.append(Violation(
                "atomic-seq-cst", fl.path, line,
                f"{expr}(...) uses memory_order_seq_cst (document the "
                "exemption or weaken the order)"))

        sites.append(AtomicSite(fl.path, line, expr, op, order_text,
                                fl.mo_comment_text(line)))
    return violations, sites


def hot_path_bodies(fl: FileLint):
    """Yield (start_index, end_index) of each TSUNAMI_HOT_PATH function body
    (skips pure declarations and preprocessor lines)."""
    for m in re.finditer(r"\b%s\b" % HOT_PATH_MACRO, fl.stripped):
        line = line_of(fl.stripped, m.start())
        if preprocessor_line(fl, line):
            continue
        i = m.end()
        depth = 0
        while i < len(fl.stripped):
            c = fl.stripped[i]
            if c == "(":
                i = balanced_span(fl.stripped, i)
                continue
            if c == ";" and depth == 0:
                break  # declaration only
            if c == "{":
                yield i, balanced_span(fl.stripped, i)
                break
            i += 1


def scan_hot_paths(fl: FileLint):
    violations: list[Violation] = []
    for start, end in hot_path_bodies(fl):
        body = fl.stripped[start:end]
        for tokens, rule in ((ALLOC_TOKENS, "hot-path-alloc"),
                             (LOCK_TOKENS, "hot-path-lock")):
            for pattern, label in tokens:
                for m in re.finditer(pattern, body):
                    line = line_of(fl.stripped, start + m.start())
                    if fl.allowed(rule, line):
                        continue
                    violations.append(Violation(
                        rule, fl.path, line,
                        f"{label} inside a {HOT_PATH_MACRO} function"))
    return violations


def scan_nondeterminism(fl: FileLint):
    violations: list[Violation] = []
    for pattern, label in NONDET_TOKENS:
        for m in re.finditer(pattern, fl.stripped):
            line = line_of(fl.stripped, m.start())
            if fl.allowed("nondeterminism", line):
                continue
            violations.append(Violation(
                "nondeterminism", fl.path, line,
                f"{label}: route randomness/time through the seeded Rng / "
                "Stopwatch modules"))
    return violations


WORKSPACE_DECL_RE = re.compile(r"\b(apply\w*)\s*\(")


def scan_workspace_pairing(fl: FileLint):
    """Header-only rule: every ws-taking `apply*` needs a legacy overload."""
    variants: dict[str, dict[str, bool | int]] = {}
    for m in WORKSPACE_DECL_RE.finditer(fl.stripped):
        name = m.group(1)
        if "impl" in name:
            continue  # private implementation detail, no public pairing
        open_idx = fl.stripped.index("(", m.end() - 1)
        close = balanced_span(fl.stripped, open_idx)
        args = fl.stripped[open_idx + 1 : close - 1]
        takes_ws = re.search(r"\bWorkspace\s*&", args) is not None
        entry = variants.setdefault(name, {"ws": False, "legacy": False,
                                           "line": line_of(fl.stripped,
                                                           m.start())})
        if takes_ws:
            entry["ws"] = True
        else:
            entry["legacy"] = True
    violations: list[Violation] = []
    for name, entry in sorted(variants.items()):
        if entry["ws"] and not entry["legacy"]:
            line = int(entry["line"])
            if fl.allowed("workspace-pairing", line):
                continue
            violations.append(Violation(
                "workspace-pairing", fl.path, line,
                f"{name} has a workspace overload but no legacy overload "
                "routing through thread_local scratch"))
    return violations


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def load_exemptions(path: Path):
    """Parse exemptions.txt: `rule  path-glob  reason...` per line."""
    exemptions: list[tuple[str, str, str]] = []
    if not path.exists():
        return exemptions
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            raise SystemExit(
                f"{path}:{lineno}: exemption needs `rule path reason`")
        exemptions.append((parts[0], parts[1], parts[2]))
    return exemptions


def exempt(violation: Violation, exemptions) -> bool:
    return any(
        rule == violation.rule and fnmatch.fnmatch(violation.path, pattern)
        for rule, pattern, _ in exemptions)


def source_files(root: Path):
    src = root / "src"
    return sorted(p for p in src.rglob("*") if p.suffix in (".hpp", ".cpp"))


def lint_file(fl: FileLint, is_header: bool):
    violations, sites = scan_atomics(fl)
    violations += scan_hot_paths(fl)
    violations += scan_nondeterminism(fl)
    if is_header:
        violations += scan_workspace_pairing(fl)
    return violations, sites


def lint_tree(root: Path):
    exemptions = load_exemptions(root / "tools" / "lint" / "exemptions.txt")
    all_violations: list[Violation] = []
    all_sites: list[AtomicSite] = []
    for path in source_files(root):
        rel = path.relative_to(root).as_posix()
        fl = FileLint(rel, path.read_text())
        violations, sites = lint_file(fl, path.suffix == ".hpp")
        all_violations += [v for v in violations if not exempt(v, exemptions)]
        all_sites += sites
    return all_violations, all_sites


def atomics_doc(sites, exemptions) -> str:
    """Render docs/atomics.md from the scanned atomic sites. Rows are unique
    (file, expr, order, rationale) in first-appearance order, so the table is
    stable under unrelated line churn."""
    lines = [
        "# Atomic memory-order audit",
        "",
        "Every atomic operation in `src/`, its explicit `std::memory_order`,",
        "and the `// mo:` rationale recorded at the call site. Generated by",
        "`python3 tools/lint/lint.py --root . --write-atomics-doc`; the",
        "`lint_atomics_doc` CTest fails when this table is stale, so the doc",
        "is always in sync with the code.",
        "",
        "The work-stealing deque in `src/parallel/thread_pool.cpp` uses",
        "`seq_cst` throughout by documented exemption (see",
        "`tools/lint/exemptions.txt`): it matches the TSan-verified model of",
        "the Chase-Lev algorithm, and the deque is not the pool's hot path.",
        "",
        "| File | Operation | Order | Rationale |",
        "|---|---|---|---|",
    ]
    seen = set()
    for s in sites:
        rationale = s.rationale or "(covered by inline allow)"
        key = (s.path, s.expr, s.order, rationale)
        if key in seen:
            continue
        seen.add(key)
        expr = s.expr.replace("|", "\\|")
        rationale = rationale.replace("|", "\\|")
        lines.append(f"| `{s.path}` | `{expr}` | {s.order} | {rationale} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve()
                        .parents[2], help="repository root (contains src/)")
    parser.add_argument("--write-atomics-doc", action="store_true",
                        help="regenerate docs/atomics.md and exit")
    parser.add_argument("--check-atomics-doc", action="store_true",
                        help="fail if docs/atomics.md is out of date")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint.py: no src/ under {root}", file=sys.stderr)
        return 2

    violations, sites = lint_tree(root)
    exemptions = load_exemptions(root / "tools" / "lint" / "exemptions.txt")
    doc_path = root / "docs" / "atomics.md"

    if args.write_atomics_doc:
        doc_path.parent.mkdir(parents=True, exist_ok=True)
        doc_path.write_text(atomics_doc(sites, exemptions))
        print(f"wrote {doc_path}")
        return 0

    if args.check_atomics_doc:
        expected = atomics_doc(sites, exemptions)
        actual = doc_path.read_text() if doc_path.exists() else ""
        if actual != expected:
            print("docs/atomics.md is stale; regenerate with\n"
                  "    python3 tools/lint/lint.py --root . --write-atomics-doc",
                  file=sys.stderr)
            return 1
        print("docs/atomics.md is in sync")
        return 0

    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} violation(s). Fix, add an inline "
              "`// lint: allow(rule) why`, or record a file exemption in "
              "tools/lint/exemptions.txt.", file=sys.stderr)
        return 1
    print(f"lint: OK ({len(sites)} atomic sites audited)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
