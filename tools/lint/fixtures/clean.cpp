// expect:
// A compliant file: explicit orders with mo: rationales, allocation kept out
// of hot paths (or allowed at grow-once sites), seeded randomness only.
#include <atomic>
#include <vector>

std::atomic<int> counter{0};
std::vector<double> scratch;

void cold_setup() {
  scratch.reserve(128);  // growth outside hot paths needs no annotation
}

TSUNAMI_HOT_PATH void hot(int n) {
  scratch.resize(static_cast<std::size_t>(n));  // lint: allow(hot-path-alloc) grow-once workspace
  // mo: relaxed — independent statistic, nothing published through it.
  counter.fetch_add(1, std::memory_order_relaxed);
}
