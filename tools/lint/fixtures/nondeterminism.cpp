// expect: nondeterminism nondeterminism
#include <cstdlib>
#include <ctime>

int unseeded() { return rand(); }

long wall() { return time(NULL); }

// Comment text mentioning rand() or time() is not code and must not fire.
double total_time(double s) { return s; }  // suffix match must not fire
long stamped() { return time(NULL); }  // lint: allow(nondeterminism) boot stamp
