// expect: atomic-explicit-order atomic-mo-comment atomic-mo-comment atomic-seq-cst
#include <atomic>

std::atomic<bool> flag{false};
std::atomic<int> top{0};

void implicit_order() {
  flag.store(true);  // defaulted seq_cst, no rationale: two violations
}

void undocumented_seq_cst() {
  // mo: seq_cst — has a rationale, but seq_cst still needs an exemption
  top.store(1, std::memory_order_seq_cst);
}

// Padding so the mo: comment above is outside the coverage radius of the
// store below — the radius covers a cluster, not the whole file; the
// blank distance here is what keeps this a genuine missing-comment case.
// (Four comment lines plus the function header exceed the 8-line window
// only together with these filler lines.)
//
//
//
void missing_comment() {
  top.store(2, std::memory_order_release);
}
