// expect: workspace-pairing
#pragma once
#include <span>

struct Workspace;

class Paired {
 public:
  void apply(std::span<const double> x, std::span<double> y) const;
  void apply(std::span<const double> x, std::span<double> y,
             Workspace& ws) const;
};

class Unpaired {
 public:
  // Workspace overload with no legacy overload: violation.
  void apply_transpose(std::span<const double> x, std::span<double> y,
                       Workspace& ws) const;

 private:
  // "impl" names are private machinery and exempt from pairing.
  void apply_impl(std::span<const double> x, Workspace& ws) const;
};
