// expect: hot-path-alloc hot-path-alloc hot-path-lock hot-path-lock
// (lock_guard<std::mutex> trips both the lock_guard and std::mutex tokens)
#include <mutex>
#include <vector>

std::vector<double> buf;
std::mutex m;

TSUNAMI_HOT_PATH void hot_alloc() {
  buf.push_back(1.0);
  double* p = new double[8];
  delete[] p;
}

TSUNAMI_HOT_PATH void hot_lock() {
  const std::lock_guard<std::mutex> lock(m);
}

void cold_is_fine() {
  buf.push_back(2.0);
  const std::lock_guard<std::mutex> lock(m);
}
