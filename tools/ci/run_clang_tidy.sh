#!/usr/bin/env bash
# Run the curated .clang-tidy wall over every src/ translation unit, failing
# on any finding (WarningsAsErrors: '*' in .clang-tidy). Used by the CI
# `tidy` job; runs locally wherever clang-tidy is installed:
#
#     tools/ci/run_clang_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (the repo configures with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON unconditionally).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-${repo_root}/build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 2
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json missing; configure first:" >&2
  echo "    cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

# One clang-tidy process per core; any nonzero exit fails the whole run.
find "${repo_root}/src" -name '*.cpp' -print0 | sort -z |
  xargs -0 -n 1 -P "$(nproc)" "${tidy}" -p "${build_dir}" --quiet

echo "clang-tidy: OK ($(find "${repo_root}/src" -name '*.cpp' | wc -l) TUs)"
