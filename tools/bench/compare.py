#!/usr/bin/env python3
"""Compare two BENCH_*.json reports (bench/bench_util.hpp JsonReport schema).

Matches cases by name between a baseline and a current report, prints the
median delta per case with the p10/p90 spread of both runs, and flags
regressions. A case REGRESSES when its median slowed down by more than
--fail-above percent AND the runs' [p10, p90] intervals do not overlap —
the overlap test keeps noisy quick-mode runs (TSUNAMI_BENCH_QUICK=1) from
tripping the gate on jitter alone.

Usage:
    tools/bench/compare.py baseline.json current.json [--fail-above 10]

Exit status: 0 when no case regresses past the threshold, 1 otherwise,
2 on malformed input. CI archives every run's BENCH_*.json under a stable
name (bench-history/BENCH_<bench>.<sha>.json) so any two points of the
trajectory can be compared after the fact.
"""

import argparse
import json
import sys


def load_cases(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare: cannot read {path}: {e}")
    cases = report.get("cases")
    if not isinstance(cases, list):
        sys.exit(f"compare: {path} has no 'cases' array")
    out = {}
    for case in cases:
        name = case.get("name")
        if not name or "median_ns" not in case:
            sys.exit(f"compare: {path} case missing name/median_ns: {case}")
        out[name] = case
    return report, out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def intervals_overlap(a, b):
    """[p10, p90] interval overlap; missing percentiles count as overlap
    (no spread information -> never escalate to a hard failure)."""
    lo_a, hi_a = a.get("p10_ns"), a.get("p90_ns")
    lo_b, hi_b = b.get("p10_ns"), b.get("p90_ns")
    if None in (lo_a, hi_a, lo_b, hi_b):
        return True
    return lo_a <= hi_b and lo_b <= hi_a


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("current", help="current BENCH_*.json")
    ap.add_argument(
        "--fail-above",
        type=float,
        default=10.0,
        metavar="PCT",
        help="median slowdown percent that fails the gate when the "
        "p10/p90 intervals also separate (default: 10)",
    )
    args = ap.parse_args()

    base_report, base = load_cases(args.baseline)
    curr_report, curr = load_cases(args.current)

    if base_report.get("quick") != curr_report.get("quick"):
        print("compare: WARNING: mixing quick and full runs; deltas are "
              "indicative only", file=sys.stderr)

    shared = [n for n in base if n in curr]
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    if not shared:
        sys.exit("compare: no case names in common")

    width = max(len(n) for n in shared)
    regressions = []
    print(f"{'case':<{width}}  {'baseline':>10}  {'current':>10}  "
          f"{'delta':>8}  spread")
    for name in shared:
        b, c = base[name], curr[name]
        mb, mc = b["median_ns"], c["median_ns"]
        delta_pct = (mc - mb) / mb * 100.0 if mb > 0 else 0.0
        overlap = intervals_overlap(b, c)
        slower = delta_pct > args.fail_above
        flag = ""
        if slower:
            flag = " SLOWER (p10/p90 overlap)" if overlap else " REGRESSION"
            if not overlap:
                regressions.append((name, delta_pct))
        elif delta_pct < -args.fail_above and not overlap:
            flag = " improved"
        print(f"{name:<{width}}  {fmt_ns(mb):>10}  {fmt_ns(mc):>10}  "
              f"{delta_pct:>+7.1f}%  "
              f"{'overlaps' if overlap else 'separated'}{flag}")
    for name in only_base:
        print(f"{name:<{width}}  (removed: only in baseline)")
    for name in only_curr:
        print(f"{name:<{width}}  (new: only in current)")

    if regressions:
        worst = ", ".join(f"{n} {d:+.1f}%" for n, d in regressions)
        print(f"\nFAIL: {len(regressions)} case(s) regressed beyond "
              f"{args.fail_above:.0f}% with separated spreads: {worst}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no case regressed beyond {args.fail_above:.0f}% "
          f"with separated spreads ({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
